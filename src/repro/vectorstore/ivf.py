"""Inverted-file (IVF) index: cluster offline, probe nearest clusters online.

Paper section 4.1 balances the per-request matching cost K + N/K and picks
K = sqrt(N) clusters; :func:`optimal_cluster_count` implements exactly that.
The index clusters lazily: entries accumulate in the exact flat index until
``retrain_threshold`` inserts/removes have occurred, then K-Means re-runs in
the background (here: synchronously on the next search).

Storage is cluster-major and contiguous, FAISS-style (the section 5
deployment note): every cluster owns a dense ``(m, dim)`` float64 block plus
a parallel key array, so a single-query probe is one ``block @ q``
matrix-vector product instead of a Python loop over posting-list keys, and
``remove`` is an O(1) swap-delete against the block's key->row map.  The
batched path (:meth:`IVFIndex.search_batch`) reuses the same blocks, scoring
each probed cluster for all of its querying rows in one matmul.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.vectorstore.flat import FlatIndex, SearchResult
from repro.vectorstore.kmeans import KMeans


def optimal_cluster_count(n: int) -> int:
    """K = argmin_K (K + N/K) = sqrt(N), at least 1."""
    if n <= 0:
        return 1
    return max(1, int(round(math.sqrt(n))))


class _ClusterBlock:
    """One posting list as contiguous storage: a dense vector block plus keys.

    ``keys[i]`` labels row ``i`` of the block; ``_pos`` inverts that mapping
    so removal is an O(1) swap-with-last (the same scheme
    :class:`~repro.vectorstore.flat.FlatIndex` uses for its global storage).
    Capacity grows by doubling, so appends are amortized O(1).  ``keys`` is
    the live list — callers may iterate it but must not mutate it.
    """

    __slots__ = ("keys", "_pos", "_vectors")

    def __init__(self, dim: int, keys: list[object] | None = None,
                 vectors: np.ndarray | None = None) -> None:
        if keys is None:
            self.keys: list[object] = []
            self._pos: dict[object, int] = {}
            self._vectors = np.empty((0, dim), dtype=float)
        else:
            self.keys = list(keys)
            self._pos = {key: row for row, key in enumerate(self.keys)}
            self._vectors = np.ascontiguousarray(vectors, dtype=float)

    def __len__(self) -> int:
        return len(self.keys)

    def view(self) -> np.ndarray:
        """The live (m, dim) block of member vectors (no copy)."""
        return self._vectors[: len(self.keys)]

    def append(self, key: object, vector: np.ndarray) -> None:
        row = len(self.keys)
        if row == self._vectors.shape[0]:  # grow capacity by doubling
            grown = np.empty((max(8, 2 * row), self._vectors.shape[1]),
                             dtype=float)
            grown[:row] = self._vectors[:row]
            self._vectors = grown
        self._vectors[row] = vector
        self._pos[key] = row
        self.keys.append(key)

    def remove(self, key: object) -> None:
        row = self._pos.pop(key)
        last = len(self.keys) - 1
        if row != last:
            moved = self.keys[last]
            self.keys[row] = moved
            self._vectors[row] = self._vectors[last]
            self._pos[moved] = row
        self.keys.pop()


class IVFIndex:
    """Clustered approximate top-k cosine search with dynamic updates.

    Falls back to exact search while the pool is small (< ``min_train_size``)
    or right after heavy churn, mirroring how production ANN deployments keep
    a fresh segment alongside trained shards.

    The flat index remains the single source of truth for *membership* and
    the K-Means training data (its row order is what retraining clusters);
    the per-cluster blocks are the serving layout derived from it.  Scores
    are identical to a per-key Python loop up to BLAS accumulation order,
    and candidate ordering — including tie-breaking — matches a per-key loop
    over the same posting lists exactly (stable sort over cluster-probe
    order, then block row order).
    """

    def __init__(self, dim: int, nprobe: int = 2, min_train_size: int = 64,
                 retrain_threshold: float = 0.3, seed: int = 0) -> None:
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        if not 0.0 < retrain_threshold <= 1.0:
            raise ValueError(f"retrain_threshold must be in (0,1], got {retrain_threshold}")
        self.dim = dim
        self.nprobe = nprobe
        self.min_train_size = min_train_size
        self.retrain_threshold = retrain_threshold
        self.seed = seed

        self._flat = FlatIndex(dim)
        self._centroids: np.ndarray | None = None
        self._blocks: list[_ClusterBlock] = []
        self._key_to_cluster: dict[object, int] = {}
        self._churn = 0  # churn events (insert/remove/overwrite) since last train
        self.trainings = 0  # exposed for tests/benchmarks

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, key: object) -> bool:
        return key in self._flat

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def n_clusters(self) -> int:
        return 0 if self._centroids is None else self._centroids.shape[0]

    @property
    def cluster_sizes(self) -> list[int]:
        """Members per cluster (empty while untrained); balance diagnostic."""
        return [len(block) for block in self._blocks]

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert ``key``; an overwrite of an existing key is ONE churn event
        (not an internal remove plus an insert), so retrains keep the cadence
        ``retrain_threshold`` promises."""
        if key in self._flat:
            self._drop(key)
        self._flat.add(key, vector)
        self._churn += 1
        if self._centroids is not None:
            # Assign to nearest existing centroid without retraining.
            vec = self._flat.get_vector(key)
            cluster = int(np.argmax(self._centroids @ vec))
            self._blocks[cluster].append(key, vec)
            self._key_to_cluster[key] = cluster

    def remove(self, key: object) -> None:
        self._drop(key)
        self._churn += 1

    def _drop(self, key: object) -> None:
        """Remove ``key`` from storage without counting a churn event."""
        self._flat.remove(key)
        cluster = self._key_to_cluster.pop(key, None)
        if cluster is not None:
            self._blocks[cluster].remove(key)

    def get_vector(self, key: object) -> np.ndarray:
        return self._flat.get_vector(key)

    def search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """Approximate top-k; exact while untrained or small.

        Trained path: score the probed clusters with one ``block @ q``
        matrix-vector product each, then take the top k with a *stable*
        argsort so exact ties resolve in cluster-probe-then-row order —
        the same order a per-key Python loop over the posting lists yields.
        """
        self._maybe_train()
        if self._centroids is None:
            return self._flat.search(query, k)

        q = np.asarray(query, dtype=float).reshape(-1)
        qnorm = float(np.linalg.norm(q))
        if qnorm <= 0 or k <= 0:
            return []
        q = q / qnorm
        nprobe = min(self.nprobe, self.n_clusters)
        centroid_scores = self._centroids @ q
        probe = np.argsort(-centroid_scores)[:nprobe]

        keys: list[object] = []
        chunks: list[np.ndarray] = []
        for cluster in probe:
            block = self._blocks[cluster]
            if not block.keys:
                continue
            # One vectorized product per probed cluster.  einsum, not BLAS
            # gemv: its per-row accumulation is a pure function of row
            # content, so identical vectors score identically wherever they
            # sit in the block — BLAS kernels can differ in the last ulp by
            # row position, which would break exact ties nondeterministically.
            chunks.append(np.einsum("ij,j->i", block.view(), q))
            keys.extend(block.keys)
        if not chunks:
            return []
        scores = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        top = np.argsort(-scores, kind="stable")[: min(k, len(keys))]
        return [SearchResult(keys[i], float(scores[i])) for i in top]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchResult]]:
        """Approximate top-``k`` for a micro-batch of queries.

        Centroids are scored for the whole batch in one matmul, queries are
        grouped by probed cluster, and each cluster's contiguous block is
        multiplied once per querying subset (``Q_sub @ block.T``) — no
        per-call row gathering, which is the amortization that makes batched
        serving pay off (section 7's throughput experiments assume this).
        """
        self._maybe_train()
        q = np.atleast_2d(np.asarray(queries, dtype=float))
        if self._centroids is None:
            return self._flat.search_batch(q, k)
        if q.shape[1] != self.dim:
            raise ValueError(f"query dim {q.shape[1]} != index dim {self.dim}")
        n_queries = q.shape[0]
        if k <= 0:
            return [[] for _ in range(n_queries)]
        norms = np.linalg.norm(q, axis=1)
        valid = norms > 0
        q = q / np.maximum(norms, 1e-12)[:, None]

        nprobe = min(self.nprobe, self.n_clusters)
        centroid_scores = q @ self._centroids.T  # (batch, K)
        probes = np.argpartition(-centroid_scores, nprobe - 1, axis=1)[:, :nprobe]

        # Invert to cluster -> querying rows so each cluster's block is
        # multiplied once per batch, not once per query.
        by_cluster: dict[int, list[int]] = defaultdict(list)
        for qi in np.flatnonzero(valid):
            for cluster in probes[qi]:
                by_cluster[int(cluster)].append(int(qi))

        candidates: list[list[SearchResult]] = [[] for _ in range(n_queries)]
        for cluster, rows in by_cluster.items():
            block = self._blocks[cluster]
            members = block.keys
            if not members:
                continue
            scores = q[rows] @ block.view().T               # (rows, m)
            m = len(members)
            keep = min(k, m)
            for row, qi in enumerate(rows):
                s = scores[row]
                top = np.argpartition(-s, keep - 1)[:keep] if m > keep \
                    else np.arange(m)
                candidates[qi].extend(
                    SearchResult(members[i], float(s[i])) for i in top
                )
        for bucket in candidates:
            bucket.sort(key=lambda r: r.score, reverse=True)
        return [bucket[:k] for bucket in candidates]

    def to_state(self) -> dict:
        """Serializable state capturing the full training-relevant history.

        Beyond membership, three things must survive a round-trip for a
        restored index to behave bit-identically: the flat storage's row
        order (K-Means reads it at retrain time), the cluster-major blocks
        (probe scoring iterates block rows for tie-breaking), and the churn
        counter (it schedules the *next* retrain).  See
        :mod:`repro.persistence.snapshot` for the on-disk encoding.
        """
        return {
            "dim": self.dim,
            "nprobe": self.nprobe,
            "min_train_size": self.min_train_size,
            "retrain_threshold": self.retrain_threshold,
            "seed": self.seed,
            "flat": self._flat.to_state(),
            "centroids": None if self._centroids is None
            else np.array(self._centroids),
            "blocks": [
                {"keys": list(block.keys), "vectors": np.array(block.view())}
                for block in self._blocks
            ],
            "churn": self._churn,
            "trainings": self.trainings,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IVFIndex":
        """Rebuild an index bit-identical to the one :meth:`to_state` saw."""
        index = cls(
            dim=int(state["dim"]),
            nprobe=int(state["nprobe"]),
            min_train_size=int(state["min_train_size"]),
            retrain_threshold=float(state["retrain_threshold"]),
            seed=int(state["seed"]),
        )
        index._flat = FlatIndex.from_state(state["flat"])
        centroids = state["centroids"]
        index._centroids = None if centroids is None \
            else np.ascontiguousarray(centroids, dtype=float)
        index._blocks = [
            _ClusterBlock(index.dim, keys=block["keys"],
                          vectors=block["vectors"])
            for block in state["blocks"]
        ]
        index._key_to_cluster = {
            key: cluster
            for cluster, block in enumerate(index._blocks)
            for key in block.keys
        }
        index._churn = int(state["churn"])
        index.trainings = int(state["trainings"])
        return index

    def retrain(self) -> bool:
        """Force one K-Means retrain now; returns whether it happened.

        Used by WAL recovery (:mod:`repro.persistence.wal`) to replay a
        retrain that originally fired lazily inside a search: given the same
        flat row order and seed, the forced retrain reproduces identical
        centroids and blocks.  A pool below ``min_train_size`` never trains
        (matching the lazy path), so the call is a no-op there.
        """
        if len(self._flat) < self.min_train_size:
            return False
        before = self.trainings
        self._churn = max(self._churn,
                          max(1, int(self.retrain_threshold * len(self._flat))))
        self._maybe_train()
        return self.trainings > before

    def matching_cost(self) -> float:
        """Expected comparisons per query: K + nprobe * N / K (section 4.1)."""
        n = len(self)
        if self._centroids is None or n == 0:
            return float(n)
        k = self.n_clusters
        return k + self.nprobe * n / k

    def _maybe_train(self) -> None:
        n = len(self._flat)
        if n < self.min_train_size:
            return
        stale = self._centroids is None or self._churn >= max(
            1, int(self.retrain_threshold * n)
        )
        if not stale:
            return
        keys = self._flat.keys
        matrix = self._flat.matrix  # rows align with ``keys``
        k = optimal_cluster_count(n)
        result = KMeans(n_clusters=k, seed=self.seed).fit(np.array(matrix))
        self._centroids = result.centroids / np.maximum(
            np.linalg.norm(result.centroids, axis=1, keepdims=True), 1e-12
        )
        # Rebuild the cluster-major blocks: one contiguous gather per cluster,
        # members in flat row order (the order a per-key rebuild would visit).
        rows_by_cluster: list[list[int]] = [
            [] for _ in range(self._centroids.shape[0])
        ]
        for row, label in enumerate(result.labels):
            rows_by_cluster[int(label)].append(row)
        self._blocks = []
        self._key_to_cluster = {}
        for cluster, rows in enumerate(rows_by_cluster):
            block_keys = [keys[r] for r in rows]
            self._blocks.append(_ClusterBlock(
                self.dim, keys=block_keys,
                vectors=matrix[np.asarray(rows, dtype=np.intp)],
            ))
            for key in block_keys:
                self._key_to_cluster[key] = cluster
        self._churn = 0
        self.trainings += 1
