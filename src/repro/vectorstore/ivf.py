"""Inverted-file (IVF) index: cluster offline, probe nearest clusters online.

Paper section 4.1 balances the per-request matching cost K + N/K and picks
K = sqrt(N) clusters; :func:`optimal_cluster_count` implements exactly that.
The index clusters lazily: entries accumulate in the exact flat index until
``retrain_threshold`` inserts/removes have occurred, then the clustering is
refreshed in the background (here: synchronously on the next search).

Storage is cluster-major and contiguous, FAISS-style (the section 5
deployment note): every cluster owns a dense ``(m, dim)`` float32 block plus
a parallel key array, so a single-query probe is one ``block @ q``
matrix-vector product instead of a Python loop over posting-list keys, and
``remove`` is an O(1) swap-delete against the block's key->row map.  The
batched path (:meth:`IVFIndex.search_batch`) reuses the same blocks, scoring
each probed cluster for all of its querying rows in one matmul.

Two scale features are gated by configuration and OFF by default:

* **Two-pass search** (``two_pass_min_n``): probed clusters are first scored
  against an int8 symmetric-quantized mirror of each block (one byte per
  component, int32 accumulation), then only the top ``rescore_depth``
  candidates are re-scored exactly in float32.  The coarse pass touches 4x
  less memory per candidate, which is what matters once the probed set blows
  the cache hierarchy; the rescore restores exact ordering for everything
  that can reach the top k.
* **Incremental retrain** (``incremental_min_n``): above this pool size a
  staleness-triggered retrain stops re-running global K-Means and instead
  recenters every cluster, splits oversized clusters with a seeded 2-means
  on their own rows, and retires undersized clusters into their nearest
  surviving neighbor.  The schedule is a pure function of journaled state
  (blocks, centroids, seed, trainings counter), so WAL replay reproduces it
  bit-identically.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.utils.rng import make_rng, stable_hash
from repro.vectorstore.flat import STORAGE_DTYPE, FlatIndex, SearchResult
from repro.vectorstore.kmeans import KMeans

#: Symmetric int8 quantization scale: components of unit vectors lie in
#: [-1, 1], so ±127 uses the full signed-byte range with no zero-point.
_Q8_SCALE = 127.0

_EPS = 1e-12

#: Above this pool size a global retrain fits K-Means on a seeded uniform
#: subsample of this many rows and assigns the rest by nearest centroid.
#: Far above every golden scenario, so behavior at test scales is unchanged.
TRAIN_SAMPLE_CAP = 200_000


def _nearest_centroid(matrix: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid labels for every row, chunked to bound the (rows, k)
    distance temporary at large pool sizes."""
    c = np.asarray(centroids, dtype=matrix.dtype)
    c_sq = np.einsum("kd,kd->k", c, c)
    labels = np.empty(matrix.shape[0], dtype=np.intp)
    step = 65_536
    for start in range(0, matrix.shape[0], step):
        chunk = matrix[start : start + step]
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
        # constant per row, so argmin only needs the last two.
        scores = chunk @ c.T
        labels[start : start + step] = np.argmin(c_sq - 2.0 * scores, axis=1)
    return labels


def quantize_i8(x: np.ndarray) -> np.ndarray:
    """Symmetric int8 quantization of unit-norm float rows.

    ``round(x * 127)`` clipped to [-127, 127]; the dot product of two
    quantized vectors then approximates ``127^2 * cosine`` and fits int32
    for any practical dim (dim * 127^2 << 2^31).  Deterministic: rint
    rounds half-to-even and the result depends only on the input values.
    """
    scaled = np.rint(np.asarray(x, dtype=STORAGE_DTYPE) * _Q8_SCALE)
    return np.clip(scaled, -_Q8_SCALE, _Q8_SCALE).astype(np.int8)


def optimal_cluster_count(n: int) -> int:
    """K = argmin_K (K + N/K) = sqrt(N), at least 1."""
    if n <= 0:
        return 1
    return max(1, int(round(math.sqrt(n))))


class _ClusterBlock:
    """One posting list as contiguous storage: a dense vector block plus keys.

    ``keys[i]`` labels row ``i`` of the block; ``_pos`` inverts that mapping
    so removal is an O(1) swap-with-last (the same scheme
    :class:`~repro.vectorstore.flat.FlatIndex` uses for its global storage).
    Capacity grows by doubling, so appends are amortized O(1).  ``keys`` is
    the live list — callers may iterate it but must not mutate it.

    A lazy int8 mirror (:meth:`q8view`) serves the two-pass coarse score.
    It materializes on first use and is then maintained incrementally in
    lock-step with the float32 rows (append quantizes one row, remove mirrors
    the swap), so steady-state search never re-quantizes a whole block.  The
    mirror is derived state: never serialized, rebuilt on demand after a
    restore, and always the exact quantization of the live float32 rows.

    A float64 running sum of the member rows rides along (``running_sum``),
    updated on every append/remove, so recentering a cluster during
    incremental retrain is O(dim) instead of an O(members * dim) pass over
    the block.  Unlike the int8 mirror it IS journaled state: the
    incremental updates accumulate in a different order than a fresh
    pairwise reduction would, so a restored index must inherit the exact
    sum (not recompute it) for its next retrain to stay bit-identical to
    the uninterrupted control.  Fresh blocks compute the sum with the same
    pairwise reduction ``mean`` uses, so construction bits never drift.
    """

    __slots__ = ("keys", "_pos", "_vectors", "_q8", "_sum")

    def __init__(self, dim: int, keys: list[object] | None = None,
                 vectors: np.ndarray | None = None,
                 running_sum: np.ndarray | None = None) -> None:
        if keys is None:
            self.keys: list[object] = []
            self._pos: dict[object, int] = {}
            self._vectors = np.empty((0, dim), dtype=STORAGE_DTYPE)
        else:
            self.keys = list(keys)
            self._pos = {key: row for row, key in enumerate(self.keys)}
            self._vectors = np.ascontiguousarray(vectors, dtype=STORAGE_DTYPE)
        if running_sum is not None:
            self._sum = np.array(running_sum, dtype=np.float64)
        else:
            self._sum = self._vectors[: len(self.keys)].sum(
                axis=0, dtype=np.float64) if self.keys \
                else np.zeros(dim, dtype=np.float64)
        self._q8: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        """Resident bytes: float32 rows plus the int8 mirror if materialized."""
        total = self._vectors.nbytes
        if self._q8 is not None:
            total += self._q8.nbytes
        return total

    def view(self) -> np.ndarray:
        """The live (m, dim) float32 block of member vectors (no copy)."""
        return self._vectors[: len(self.keys)]

    @property
    def running_sum(self) -> np.ndarray:
        """The maintained float64 sum of the live rows (journaled state)."""
        return self._sum

    def q8view(self) -> np.ndarray:
        """The live (m, dim) int8 quantized mirror (materialized on demand)."""
        if self._q8 is None:
            self._q8 = np.empty(self._vectors.shape, dtype=np.int8)
            m = len(self.keys)
            self._q8[:m] = quantize_i8(self._vectors[:m])
        return self._q8[: len(self.keys)]

    def append(self, key: object, vector: np.ndarray) -> None:
        row = len(self.keys)
        if row == self._vectors.shape[0]:  # grow capacity by doubling
            cap = max(8, 2 * row)
            grown = np.empty((cap, self._vectors.shape[1]),
                             dtype=STORAGE_DTYPE)
            grown[:row] = self._vectors[:row]
            self._vectors = grown
            if self._q8 is not None:
                grown_q8 = np.empty((cap, self._vectors.shape[1]),
                                    dtype=np.int8)
                grown_q8[:row] = self._q8[:row]
                self._q8 = grown_q8
        self._vectors[row] = vector
        self._sum += self._vectors[row]  # the stored (float32-cast) row
        if self._q8 is not None:
            self._q8[row] = quantize_i8(self._vectors[row])
        self._pos[key] = row
        self.keys.append(key)

    def remove(self, key: object) -> None:
        row = self._pos.pop(key)
        self._sum -= self._vectors[row]
        last = len(self.keys) - 1
        if row != last:
            moved = self.keys[last]
            self.keys[row] = moved
            self._vectors[row] = self._vectors[last]
            if self._q8 is not None:
                self._q8[row] = self._q8[last]
            self._pos[moved] = row
        self.keys.pop()


class IVFIndex:
    """Clustered approximate top-k cosine search with dynamic updates.

    Falls back to exact search while the pool is small (< ``min_train_size``)
    or right after heavy churn, mirroring how production ANN deployments keep
    a fresh segment alongside trained shards.

    The flat index remains the single source of truth for *membership* and
    the K-Means training data (its row order is what a global retrain
    clusters); the per-cluster blocks are the serving layout derived from it.
    Scores are identical to a per-key Python loop up to float32 accumulation
    order, and candidate ordering — including tie-breaking — matches a
    per-key loop over the same posting lists exactly (stable sort over
    cluster-probe order, then block row order).

    ``two_pass_min_n`` / ``rescore_depth`` gate the int8 coarse + exact
    rescore path and ``incremental_min_n`` gates split/merge maintenance;
    see the module docstring.  Both default to values that leave behavior
    on existing workloads unchanged (two-pass fully off; incremental only
    above pools far larger than any golden scenario builds).
    """

    def __init__(self, dim: int, nprobe: int = 2, min_train_size: int = 64,
                 retrain_threshold: float = 0.3, seed: int = 0,
                 two_pass_min_n: int | None = None, rescore_depth: int = 64,
                 incremental_min_n: int = 10_000) -> None:
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        if not 0.0 < retrain_threshold <= 1.0:
            raise ValueError(f"retrain_threshold must be in (0,1], got {retrain_threshold}")
        if two_pass_min_n is not None and two_pass_min_n < 1:
            raise ValueError(
                f"two_pass_min_n must be None or >= 1, got {two_pass_min_n}")
        if rescore_depth < 1:
            raise ValueError(f"rescore_depth must be >= 1, got {rescore_depth}")
        if incremental_min_n < 1:
            raise ValueError(
                f"incremental_min_n must be >= 1, got {incremental_min_n}")
        self.dim = dim
        self.nprobe = nprobe
        self.min_train_size = min_train_size
        self.retrain_threshold = retrain_threshold
        self.seed = seed
        self.two_pass_min_n = two_pass_min_n
        self.rescore_depth = rescore_depth
        self.incremental_min_n = incremental_min_n

        self._flat = FlatIndex(dim)
        self._centroids: np.ndarray | None = None
        self._blocks: list[_ClusterBlock] = []
        self._key_to_cluster: dict[object, int] = {}
        self._churn = 0  # churn events (insert/remove/overwrite) since last train
        self.trainings = 0  # exposed for tests/benchmarks

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, key: object) -> bool:
        return key in self._flat

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def n_clusters(self) -> int:
        return 0 if self._centroids is None else self._centroids.shape[0]

    @property
    def cluster_sizes(self) -> list[int]:
        """Members per cluster (empty while untrained); balance diagnostic."""
        return [len(block) for block in self._blocks]

    @property
    def nbytes(self) -> int:
        """Resident bytes of dense storage: flat matrix + cluster blocks."""
        return self._flat.nbytes + sum(b.nbytes for b in self._blocks)

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert ``key``; an overwrite of an existing key is ONE churn event
        (not an internal remove plus an insert), so retrains keep the cadence
        ``retrain_threshold`` promises."""
        if key in self._flat:
            self._drop(key)
        self._flat.add(key, vector)
        self._churn += 1
        if self._centroids is not None:
            # Assign to nearest existing centroid without retraining.
            vec = self._flat.get_vector(key)
            cluster = int(np.argmax(self._centroids @ vec))
            self._blocks[cluster].append(key, vec)
            self._key_to_cluster[key] = cluster

    def remove(self, key: object) -> None:
        self._drop(key)
        self._churn += 1

    def _drop(self, key: object) -> None:
        """Remove ``key`` from storage without counting a churn event."""
        self._flat.remove(key)
        cluster = self._key_to_cluster.pop(key, None)
        if cluster is not None:
            self._blocks[cluster].remove(key)

    def get_vector(self, key: object) -> np.ndarray:
        return self._flat.get_vector(key)

    @property
    def two_pass_active(self) -> bool:
        """Whether the next trained search takes the coarse+rescore path."""
        return (self.two_pass_min_n is not None
                and len(self._flat) >= self.two_pass_min_n)

    def search(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """Approximate top-k; exact while untrained or small.

        Trained path: score the probed clusters with one ``block @ q``
        matrix-vector product each, then take the top k with a *stable*
        argsort so exact ties resolve in cluster-probe-then-row order —
        the same order a per-key Python loop over the posting lists yields.

        When two-pass is active, the probed blocks are first scored in int8
        (:meth:`_ClusterBlock.q8view`) and only the top ``rescore_depth``
        coarse candidates are scored in float32.  Identical vectors get
        identical coarse AND exact scores, so the stable sorts keep their
        relative order equal to probe-then-row order, same as single-pass.
        """
        self._maybe_train()
        if self._centroids is None:
            return self._flat.search(query, k)

        q = np.asarray(query, dtype=np.float64).reshape(-1)
        qnorm = float(np.linalg.norm(q))
        if qnorm <= 0 or k <= 0:
            return []
        q = q / qnorm
        nprobe = min(self.nprobe, self.n_clusters)
        centroid_scores = self._centroids @ q
        probe = np.argsort(-centroid_scores)[:nprobe]
        # Block scoring happens in storage precision: a float64 query would
        # silently upcast every probed block per call.
        q32 = q.astype(STORAGE_DTYPE)

        blocks = [self._blocks[c] for c in probe if self._blocks[c].keys]
        if not blocks:
            return []
        if self.two_pass_active:
            return self._search_two_pass(blocks, q32, k)

        # One vectorized product per probed cluster.  einsum, not BLAS
        # gemv: its per-row accumulation is a pure function of row
        # content, so identical vectors score identically wherever they
        # sit in the block — BLAS kernels can differ in the last ulp by
        # row position, which would break exact ties nondeterministically.
        chunks = [np.einsum("ij,j->i", block.view(), q32) for block in blocks]
        scores = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if k == 1:
            # argmax returns the FIRST index attaining the max — exactly the
            # stable-argsort winner — and skips sorting the other few
            # hundred probed rows (the admission dedupe check hits this
            # path on every served request).
            top = (int(np.argmax(scores)),)
        else:
            top = np.argsort(-scores, kind="stable")[: min(k, scores.shape[0])]
        # Materialize keys for the k winners only (probed clusters hold
        # hundreds of keys; extending a Python list with all of them per
        # query costs more than the scoring matmuls).
        if len(blocks) == 1:
            keys0 = blocks[0].keys
            return [SearchResult(keys0[i], float(scores[i])) for i in top]
        offsets = np.zeros(len(blocks) + 1, dtype=np.intp)
        offsets[1:] = np.cumsum([len(b.keys) for b in blocks])
        owners = np.searchsorted(offsets, top, side="right") - 1
        return [
            SearchResult(blocks[b].keys[int(gi - offsets[b])], float(scores[gi]))
            for b, gi in zip(owners, top)
        ]

    def _search_two_pass(self, blocks: list[_ClusterBlock], q32: np.ndarray,
                         k: int) -> list[SearchResult]:
        """int8 coarse score over probed blocks, exact float32 rescore of top-C.

        Only the C = max(k, rescore_depth) survivors of the coarse pass pay
        float32 work (and Python-level key lookups), so per-query cost is
        dominated by the 1-byte-per-component coarse scan.  Both sorts are
        stable: coarse ties keep probe-then-row order, and exact-rescore ties
        keep coarse order — so identical vectors rank exactly as they would
        single-pass.
        """
        q8 = quantize_i8(q32)
        chunks = [np.einsum("ij,j->i", block.q8view(), q8, dtype=np.int32)
                  for block in blocks]
        coarse = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        depth = min(max(k, self.rescore_depth), coarse.shape[0])
        cand = np.argsort(-coarse, kind="stable")[:depth]

        # Map concatenated candidate indices back to (block, row) through the
        # chunk offsets; only these `depth` rows get gathered and rescored.
        offsets = np.zeros(len(blocks) + 1, dtype=np.intp)
        offsets[1:] = np.cumsum([len(b) for b in blocks])
        cand_vecs = np.empty((depth, self.dim), dtype=STORAGE_DTYPE)
        cand_keys: list[object] = []
        for out, gi in enumerate(cand):
            b = int(np.searchsorted(offsets, gi, side="right")) - 1
            row = int(gi - offsets[b])
            cand_vecs[out] = blocks[b].view()[row]
            cand_keys.append(blocks[b].keys[row])
        exact = np.einsum("ij,j->i", cand_vecs, q32)
        top = np.argsort(-exact, kind="stable")[: min(k, depth)]
        return [SearchResult(cand_keys[i], float(exact[i])) for i in top]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchResult]]:
        """Approximate top-``k`` for a micro-batch of queries.

        Centroids are scored for the whole batch in one matmul, queries are
        grouped by probed cluster, and each cluster's contiguous block is
        multiplied once per querying subset (``Q_sub @ block.T``) — no
        per-call row gathering, which is the amortization that makes batched
        serving pay off (section 7's throughput experiments assume this).
        The batched path always scores in exact float32: the block matmul is
        already amortized across the batch, so the int8 coarse pass has
        nothing to win here (it targets the single-request serve loop).
        """
        self._maybe_train()
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self._centroids is None:
            return self._flat.search_batch(q, k)
        if q.shape[1] != self.dim:
            raise ValueError(f"query dim {q.shape[1]} != index dim {self.dim}")
        n_queries = q.shape[0]
        if k <= 0:
            return [[] for _ in range(n_queries)]
        norms = np.linalg.norm(q, axis=1)
        valid = norms > 0
        q = q / np.maximum(norms, _EPS)[:, None]

        nprobe = min(self.nprobe, self.n_clusters)
        centroid_scores = q @ self._centroids.T  # (batch, K)
        probes = np.argpartition(-centroid_scores, nprobe - 1, axis=1)[:, :nprobe]
        q32 = q.astype(STORAGE_DTYPE)

        # Invert to cluster -> querying rows so each cluster's block is
        # multiplied once per batch, not once per query.
        by_cluster: dict[int, list[int]] = defaultdict(list)
        for qi in np.flatnonzero(valid):
            for cluster in probes[qi]:
                by_cluster[int(cluster)].append(int(qi))

        candidates: list[list[SearchResult]] = [[] for _ in range(n_queries)]
        for cluster, rows in by_cluster.items():
            block = self._blocks[cluster]
            members = block.keys
            if not members:
                continue
            scores = q32[rows] @ block.view().T             # (rows, m)
            m = len(members)
            keep = min(k, m)
            for row, qi in enumerate(rows):
                s = scores[row]
                top = np.argpartition(-s, keep - 1)[:keep] if m > keep \
                    else np.arange(m)
                candidates[qi].extend(
                    SearchResult(members[i], float(s[i])) for i in top
                )
        for bucket in candidates:
            bucket.sort(key=lambda r: r.score, reverse=True)
        return [bucket[:k] for bucket in candidates]

    def to_state(self) -> dict:
        """Serializable state capturing the full training-relevant history.

        Beyond membership, four things must survive a round-trip for a
        restored index to behave bit-identically: the flat storage's row
        order (a global retrain reads it), the cluster-major blocks (probe
        scoring iterates block rows for tie-breaking, and the incremental
        split/merge schedule is a function of them), each block's running
        sum (recentering reads it, and its incremental accumulation order
        is not recoverable from the rows), and the churn counter (it
        schedules the *next* retrain).  The int8 mirrors are derived state
        and deliberately absent.  See :mod:`repro.persistence.snapshot`
        for the on-disk encoding.
        """
        return {
            "dim": self.dim,
            "nprobe": self.nprobe,
            "min_train_size": self.min_train_size,
            "retrain_threshold": self.retrain_threshold,
            "seed": self.seed,
            "two_pass_min_n": self.two_pass_min_n,
            "rescore_depth": self.rescore_depth,
            "incremental_min_n": self.incremental_min_n,
            "flat": self._flat.to_state(),
            "centroids": None if self._centroids is None
            else np.array(self._centroids, dtype=np.float64),
            "blocks": [
                {"keys": list(block.keys),
                 "vectors": np.array(block.view(), dtype=STORAGE_DTYPE),
                 "sum": np.array(block.running_sum, dtype=np.float64)}
                for block in self._blocks
            ],
            "churn": self._churn,
            "trainings": self.trainings,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IVFIndex":
        """Rebuild an index bit-identical to the one :meth:`to_state` saw.

        The scale knobs default when absent so pre-overhaul snapshots (which
        never wrote them) restore with today's default behavior; float64
        vectors from such snapshots narrow to float32 in
        :meth:`FlatIndex.from_state` and the block constructor.
        """
        index = cls(
            dim=int(state["dim"]),
            nprobe=int(state["nprobe"]),
            min_train_size=int(state["min_train_size"]),
            retrain_threshold=float(state["retrain_threshold"]),
            seed=int(state["seed"]),
            two_pass_min_n=state.get("two_pass_min_n"),
            rescore_depth=int(state.get("rescore_depth", 64)),
            incremental_min_n=int(state.get("incremental_min_n", 10_000)),
        )
        index._flat = FlatIndex.from_state(state["flat"])
        centroids = state["centroids"]
        index._centroids = None if centroids is None \
            else np.ascontiguousarray(centroids, dtype=np.float64)
        # Pre-overhaul snapshots carry no running sum; recomputing it is
        # exact for them because the drifted accumulation order only exists
        # once incremental retrains have run (which those snapshots predate).
        index._blocks = [
            _ClusterBlock(index.dim, keys=block["keys"],
                          vectors=block["vectors"],
                          running_sum=block.get("sum"))
            for block in state["blocks"]
        ]
        index._key_to_cluster = {
            key: cluster
            for cluster, block in enumerate(index._blocks)
            for key in block.keys
        }
        index._churn = int(state["churn"])
        index.trainings = int(state["trainings"])
        return index

    def retrain(self) -> bool:
        """Force one retrain now; returns whether it happened.

        Used by WAL recovery (:mod:`repro.persistence.wal`) to replay a
        retrain that originally fired lazily inside a search: given the same
        journaled state (flat row order, blocks, seed, trainings counter),
        the forced retrain reproduces identical centroids and blocks —
        whether the pool size selects the global K-Means path or the
        incremental split/merge path.  A pool below ``min_train_size`` never
        trains (matching the lazy path), so the call is a no-op there.
        """
        if len(self._flat) < self.min_train_size:
            return False
        before = self.trainings
        self._churn = max(self._churn,
                          max(1, int(self.retrain_threshold * len(self._flat))))
        self._maybe_train()
        return self.trainings > before

    def matching_cost(self) -> float:
        """Expected comparisons per query: K + nprobe * N / K (section 4.1)."""
        n = len(self)
        if self._centroids is None or n == 0:
            return float(n)
        k = self.n_clusters
        return k + self.nprobe * n / k

    def _maybe_train(self) -> None:
        n = len(self._flat)
        if n < self.min_train_size:
            return
        stale = self._centroids is None or self._churn >= max(
            1, int(self.retrain_threshold * n)
        )
        if not stale:
            return
        if self._centroids is not None and n >= self.incremental_min_n:
            self._incremental_retrain()
        else:
            self._global_retrain()
        self._churn = 0
        self.trainings += 1

    def _global_retrain(self) -> None:
        """Full K-Means over the flat pool; rebuilds every block.

        Above ``TRAIN_SAMPLE_CAP`` rows the K-Means itself fits on a seeded
        uniform subsample (Lloyd's over the full pool is quadratic-ish in
        practice: n * k * dim per iteration, ~1.3e11 FLOPs per iteration at
        n=1M) and every row is then assigned to its nearest fitted centroid.
        At or below the cap — every golden scenario, by orders of magnitude —
        the fit consumes the full pool and behavior is unchanged.
        """
        keys = self._flat.keys
        matrix = self._flat.matrix  # rows align with ``keys``; no copy
        n = len(keys)
        k = optimal_cluster_count(n)
        if n > TRAIN_SAMPLE_CAP:
            rng = make_rng(
                stable_hash("train_sample", self.seed, self.trainings))
            sample = np.sort(rng.choice(n, size=TRAIN_SAMPLE_CAP,
                                        replace=False))
            result = KMeans(n_clusters=k, seed=self.seed).fit(matrix[sample])
            self._set_centroids(result.centroids)
            labels = _nearest_centroid(matrix, result.centroids)
        else:
            result = KMeans(n_clusters=k, seed=self.seed).fit(matrix)
            self._set_centroids(result.centroids)
            labels = result.labels
        # Rebuild the cluster-major blocks: one contiguous gather per cluster,
        # members in flat row order (the order a per-key rebuild would visit).
        rows_by_cluster: list[list[int]] = [
            [] for _ in range(self._centroids.shape[0])
        ]
        for row, label in enumerate(labels):
            rows_by_cluster[int(label)].append(row)
        self._blocks = []
        self._key_to_cluster = {}
        for cluster, rows in enumerate(rows_by_cluster):
            block_keys = [keys[r] for r in rows]
            self._blocks.append(_ClusterBlock(
                self.dim, keys=block_keys,
                vectors=matrix[np.asarray(rows, dtype=np.intp)],
            ))
            for key in block_keys:
                self._key_to_cluster[key] = cluster

    def _set_centroids(self, centroids: np.ndarray) -> None:
        """Store unit-normalized float64 centroids (scored against queries)."""
        c = np.asarray(centroids, dtype=np.float64)
        self._centroids = c / np.maximum(
            np.linalg.norm(c, axis=1, keepdims=True), _EPS
        )

    def _incremental_retrain(self) -> None:
        """Split/merge maintenance instead of a global K-Means.

        Three deterministic passes over the journaled blocks, each iterating
        clusters in index order:

        1. **Recenter** every non-empty cluster on the float64 mean of its
           current members (drift correction after churn).
        2. **Split** clusters above ``2 * n / sqrt(n)`` members via 2-means
           on the cluster's own rows, seeded by
           ``stable_hash("split", seed, trainings, cluster)``; the first
           half stays in place, the second half appends as a new cluster.
        3. **Retire** clusters below a quarter of the target size: their
           members reassign to the nearest surviving centroid, visited in
           retired-cluster-then-row order.

        Recentering reads each block's maintained running sum (O(k * dim)
        total), splits touch only oversized clusters, and the key→cluster
        map is updated in place — a full O(n) rebuild happens only when the
        retire pass compacts cluster indices.  That keeps a retire-free
        maintenance tick in amortized milliseconds at N=1M (the benchmark
        gate), versus O(n * sqrt(n)) for global K-Means.  Inputs are exactly
        the journaled state (blocks with their running sums, seed,
        trainings), so a WAL-replayed retrain reproduces the same schedule
        and bit-identical blocks.
        """
        n = len(self._flat)
        target = n / optimal_cluster_count(n)
        ceiling = max(2, int(2.0 * target))
        floor = max(1, int(target / 4.0))

        centroids = [self._recenter(b) for b in self._blocks]

        # Split pass: only clusters that existed at tick start are eligible;
        # halves appended this tick wait for a later tick.
        for ci in range(len(self._blocks)):
            block = self._blocks[ci]
            if len(block) <= ceiling:
                continue
            sub_seed = stable_hash("split", self.seed, self.trainings, ci)
            result = KMeans(n_clusters=2, seed=sub_seed).fit(block.view())
            half = np.flatnonzero(result.labels == 1)
            if half.size == 0 or half.size == len(block):
                continue  # degenerate split (identical rows): keep as-is
            keep = np.flatnonzero(result.labels == 0)
            moved_keys = [block.keys[i] for i in half]
            moved_vecs = np.array(block.view()[half], dtype=STORAGE_DTYPE)
            kept = _ClusterBlock(
                self.dim, keys=[block.keys[i] for i in keep],
                vectors=block.view()[keep],
            )
            self._blocks[ci] = kept
            centroids[ci] = self._recenter(kept)
            new_block = _ClusterBlock(self.dim, keys=moved_keys,
                                      vectors=moved_vecs)
            self._blocks.append(new_block)
            centroids.append(self._recenter(new_block))
            new_ci = len(self._blocks) - 1
            for key in moved_keys:
                self._key_to_cluster[key] = new_ci

        # Retire pass: survivors keep their relative order; retired members
        # reassign to the nearest surviving centroid.
        survivors = [ci for ci, b in enumerate(self._blocks)
                     if len(b) >= floor and centroids[ci] is not None]
        if not survivors:
            # Pathological (every cluster tiny): keep the largest, lowest
            # index winning ties, so at least one cluster always survives.
            sizes = [len(b) for b in self._blocks]
            survivors = [sizes.index(max(sizes))]
        if len(survivors) < len(self._blocks):
            surv_set = set(survivors)
            surv_blocks = [self._blocks[ci] for ci in survivors]
            surv_centroids = np.stack([centroids[ci] for ci in survivors])
            for ci, block in enumerate(self._blocks):
                if ci in surv_set:
                    continue
                for row in range(len(block)):
                    vec = block.view()[row]
                    dest = int(np.argmax(surv_centroids @ vec))
                    surv_blocks[dest].append(block.keys[row], vec)
            self._blocks = surv_blocks
            centroids = [self._recenter(b) for b in self._blocks]
            # Compaction renumbered every surviving cluster: this is the one
            # path that still pays a full O(n) key-map rebuild.  Recenter and
            # split maintain the map in place, so a retire-free tick (the
            # steady state the N=1M gate times) never touches all n entries.
            self._key_to_cluster = {
                key: cluster
                for cluster, block in enumerate(self._blocks)
                for key in block.keys
            }

        self._centroids = np.stack(centroids)

    def _recenter(self, block: _ClusterBlock) -> np.ndarray | None:
        """Unit-normalized float64 mean of a block's rows (None if empty).

        Reads the block's maintained running sum — O(dim), not a pass over
        the rows — which is what keeps the whole recenter sweep O(k * dim)
        at N=1M.  For a freshly built block the sum equals the pairwise
        ``mean`` reduction bit-for-bit; after incremental churn it carries
        the (deterministic, journaled) accumulation order instead.
        """
        m = len(block.keys)
        if not m:
            return None
        mean = block.running_sum / m
        return mean / max(float(np.linalg.norm(mean)), _EPS)
