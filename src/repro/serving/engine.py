"""The batched retrieval engine: micro-batching policy for the serve loop.

The paper's serving stack (section 5) pays retrieval cost per request; at
production scale the standard fix is micro-batching — hold arrivals for at
most ``max_wait_s`` or until ``max_batch`` of them accumulate, then run
embedding + stage-1 retrieval for the whole batch as one vectorized index
pass (``search_batch`` down the :mod:`repro.vectorstore` stack).  Routing
and generation stay per-request: they are stateful (the section-4.2 bandit
updates online) and the cluster simulator schedules them individually.

Components:

* :class:`BatchPolicy` — the size/timeout knobs.
* :class:`RequestBatcher` — the accumulation state machine; pure policy, no
  clock of its own, so both the discrete-event simulator and a wall-clock
  server can drive it.
* :class:`BatchedRetrievalEngine` — binds a batch-routing callable (e.g.
  :meth:`repro.core.service.ICCacheService.cluster_batch_router`) to a
  policy; :class:`repro.serving.cluster.ClusterSimulator` accepts it in
  place of a per-request router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class BatchPolicy:
    """Size/timeout micro-batching policy.

    A batch is dispatched as soon as it holds ``max_batch`` items, or
    ``max_wait_s`` after its first item arrived, whichever comes first —
    the classic bounded-staleness batching rule (latency cost is at most
    ``max_wait_s`` of extra queueing per request).
    """

    max_batch: int = 8
    max_wait_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


class RequestBatcher:
    """Accumulates items into micro-batches under a :class:`BatchPolicy`.

    The batcher is clock-free: callers pass ``now`` into :meth:`add` and
    read :attr:`deadline` to learn when the open batch must be force-flushed.
    ``generation`` increments on every flush so schedulers can recognize
    stale timers (a timer armed for a batch that size-flushed already).
    """

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._pending: list = []
        self.deadline: float | None = None   # when the open batch expires
        self.generation = 0                   # flushes so far
        self.batches_dispatched = 0
        self.items_enqueued = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, item: object, now: float) -> list | None:
        """Park ``item``; returns a full batch if this add filled one.

        When the returned value is ``None`` and :attr:`deadline` is set, the
        caller must arrange a :meth:`flush` no later than that time.
        """
        if not self._pending:
            self.deadline = now + self.policy.max_wait_s
        self._pending.append(item)
        self.items_enqueued += 1
        if len(self._pending) >= self.policy.max_batch:
            return self.flush()
        return None

    def flush(self) -> list:
        """Drain and return the open batch (empty list if nothing pending)."""
        batch, self._pending = self._pending, []
        self.deadline = None
        if batch:
            self.generation += 1
            self.batches_dispatched += 1
        return batch


# One routing decision per request, same shape as the per-request RouterFn
# in repro.serving.cluster: (model_name, example views).
BatchRouterFn = Callable[[Sequence, object], list]


class BatchedRetrievalEngine:
    """A drop-in replacement for a per-request router in the simulator.

    ``route_batch(requests, sim)`` must return one ``(model_name, examples)``
    decision per request; :meth:`ICCacheService.cluster_batch_router
    <repro.core.service.ICCacheService.cluster_batch_router>` produces
    exactly that, with embedding + stage-1 retrieval amortized across the
    batch.  :class:`repro.serving.cluster.ClusterSimulator` detects this
    object (via ``route_batch``) and drives a :class:`RequestBatcher` with
    its event clock, so batching delay shows up in queue-wait metrics.
    """

    def __init__(self, route_batch: BatchRouterFn,
                 policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._route_batch = route_batch

    def route_batch(self, requests: Sequence, sim) -> list:
        decisions = self._route_batch(requests, sim)
        if len(decisions) != len(requests):
            raise ValueError(
                f"batch router returned {len(decisions)} decisions "
                f"for {len(requests)} requests"
            )
        return decisions

    def make_batcher(self) -> RequestBatcher:
        """A fresh batcher bound to this engine's policy."""
        return RequestBatcher(self.policy)
