"""Discrete-event serving-cluster simulator (vLLM on 16xA100, substituted).

The paper's serving experiments need queueing behaviour, not GPU kernels: a
fixed GPU budget is partitioned into model replicas; each replica sustains a
bounded number of concurrent requests (continuous-batching slots); requests
queue FIFO per model; latency = queue wait + TTFT + decode.  The simulator
reproduces exactly that, driven by arrival traces from
:mod:`repro.workload.trace` and a pluggable routing policy — either a
per-request router or the batched retrieval engine of
:mod:`repro.serving.engine`, which micro-batches arrivals so retrieval work
amortizes across requests.
"""

from repro.serving.cluster import ClusterConfig, ClusterSimulator, ModelDeployment
from repro.serving.engine import (
    BatchedRetrievalEngine,
    BatchPolicy,
    RequestBatcher,
)
from repro.serving.records import ServedRequest, ServingReport
from repro.serving.metrics import windowed_series
from repro.serving.autoscaler import BiasAutoscaler, ScalingDecision

__all__ = [
    "ClusterConfig",
    "ClusterSimulator",
    "ModelDeployment",
    "BatchedRetrievalEngine",
    "BatchPolicy",
    "RequestBatcher",
    "ServedRequest",
    "ServingReport",
    "windowed_series",
    "BiasAutoscaler",
    "ScalingDecision",
]
