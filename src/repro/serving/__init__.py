"""Discrete-event serving-cluster simulator (vLLM on 16xA100, substituted).

The paper's serving experiments need queueing behaviour, not GPU kernels: a
fixed GPU budget is partitioned into model replicas; each replica sustains a
bounded number of concurrent requests (continuous-batching slots); requests
queue FIFO per model; latency = queue wait + TTFT + decode.  The simulator
reproduces exactly that over the deterministic event runtime of
:mod:`repro.runtime`: arrival traces from :mod:`repro.workload.trace`, the
micro-batching engine of :mod:`repro.serving.engine`, live bias-signal
autoscaling (:mod:`repro.serving.autoscaler`), and online cache maintenance
all compose as event sources on one loop.
"""

from repro.serving.cluster import ClusterConfig, ClusterSimulator, ModelDeployment
from repro.serving.engine import (
    BatchedRetrievalEngine,
    BatchPolicy,
    RequestBatcher,
)
from repro.serving.records import (
    RateLimitEvent,
    ScalingEvent,
    ServedRequest,
    ServingReport,
    ShedEvent,
)
from repro.serving.metrics import replica_series, windowed_series
from repro.serving.autoscaler import BiasAutoscaler, ScalingDecision

__all__ = [
    "ClusterConfig",
    "ClusterSimulator",
    "ModelDeployment",
    "BatchedRetrievalEngine",
    "BatchPolicy",
    "RequestBatcher",
    "RateLimitEvent",
    "ScalingEvent",
    "ServedRequest",
    "ServingReport",
    "ShedEvent",
    "replica_series",
    "windowed_series",
    "BiasAutoscaler",
    "ScalingDecision",
]
