"""Time-series views over serving reports (Fig. 12's per-minute panels)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.serving.records import ServedRequest, ServingReport


@dataclass
class WindowedSeries:
    """A per-window aggregate: ``times`` are window midpoints in seconds.

    The data behind the paper's time-series panels — e.g. Fig. 12's
    per-minute offload ratio and Fig. 2's load-variability traces.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must align")


def windowed_series(report: ServingReport, window_s: float,
                    value_fn: Callable[[list[ServedRequest]], float],
                    by: str = "arrival") -> WindowedSeries:
    """Aggregate records into fixed windows by arrival (or finish) time.

    ``value_fn`` maps the records of one window to a scalar (e.g. offload
    ratio, mean latency).  Empty windows get NaN so plots show gaps rather
    than fabricated zeros.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if by not in ("arrival", "finish"):
        raise ValueError(f"by must be 'arrival' or 'finish', got {by!r}")
    if not report.records:
        return WindowedSeries(times=np.array([]), values=np.array([]))

    def timestamp(record: ServedRequest) -> float:
        return record.arrival_s if by == "arrival" else record.finish_s

    horizon = max(timestamp(r) for r in report.records)
    n_windows = int(horizon // window_s) + 1
    buckets: list[list[ServedRequest]] = [[] for _ in range(n_windows)]
    for record in report.records:
        buckets[int(timestamp(record) // window_s)].append(record)

    times = (np.arange(n_windows) + 0.5) * window_s
    values = np.array([
        value_fn(bucket) if bucket else float("nan") for bucket in buckets
    ])
    return WindowedSeries(times=times, values=values)


def offload_ratio_fn(small_models: set[str]) -> Callable[[list[ServedRequest]], float]:
    """Window aggregator: fraction of requests served by small models."""

    def fn(records: list[ServedRequest]) -> float:
        return sum(1 for r in records if r.model_name in small_models) / len(records)

    return fn


def mean_latency_fn(records: list[ServedRequest]) -> float:
    """Window aggregator: average end-to-end latency."""
    return float(np.mean([r.e2e_latency_s for r in records]))


def replica_series(report: ServingReport, model_name: str,
                   initial_replicas: int) -> WindowedSeries:
    """The replica-count step function of one model across a run.

    Built from the report's :class:`~repro.serving.records.ScalingEvent`
    timeline (live autoscaling runs); ``times`` are the instants the count
    changed, starting at t=0 with ``initial_replicas``.
    """
    times = [0.0]
    values = [float(initial_replicas)]
    for event in report.scaling:
        if event.model_name != model_name:
            continue
        times.append(event.time_s)
        values.append(float(event.replicas))
    return WindowedSeries(times=np.asarray(times), values=np.asarray(values))
