"""Per-request serving records and run-level reports.

These are the observables behind the paper's serving figures: per-request
latency decompositions (queue wait vs TTFT vs decode) feed the Fig. 12
latency panels, and the run-level aggregates (throughput, offload ratio,
total cost) are the axes of the Fig. 13 quality-throughput Pareto study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import LatencySummary, summarize_latencies


@dataclass
class ServedRequest:
    """One completed request's serving-side observables.

    The latency decomposition follows the paper's serving model (section 6):
    end-to-end latency = queue wait + TTFT + decode.  ``queue_wait_s``
    includes any retrieval micro-batching delay introduced by
    :class:`repro.serving.engine.BatchedRetrievalEngine`, so batching
    policies are charged honestly in the Fig. 12 latency panels.
    """

    request_id: str
    model_name: str
    arrival_s: float
    start_s: float       # when a replica slot was acquired
    finish_s: float
    ttft_s: float        # generation-side TTFT (excludes queueing)
    quality: float
    prompt_tokens: int
    output_tokens: int
    n_examples: int
    cost: float

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def e2e_latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def observed_ttft_s(self) -> float:
        """User-perceived TTFT: queueing plus prefill."""
        return self.queue_wait_s + self.ttft_s


@dataclass(frozen=True)
class ScalingEvent:
    """One applied replica-count change during a run.

    Emitted by :meth:`ClusterSimulator.apply_scaling` whenever a live
    :class:`~repro.serving.autoscaler.ScalingDecision` actually changes a
    deployment — ``applied_delta`` can be smaller than ``requested_delta``
    when the GPU budget clamps a scale-up (or the one-replica floor clamps
    a scale-down).
    """

    time_s: float
    model_name: str
    requested_delta: int
    applied_delta: int
    replicas: int        # replica count after the change
    total_gpus: int      # cluster-wide GPUs after the change


@dataclass(frozen=True)
class ShedEvent:
    """One request refused at admission because its queue was full.

    Emitted by :meth:`ClusterSimulator.enqueue` when a
    :attr:`~repro.serving.cluster.ClusterConfig.max_queue_depth` is set and
    the routed model's backlog has reached it — the load-shedding backstop
    a production serving tier applies under flash crowds rather than
    letting queue waits grow without bound.
    """

    time_s: float
    model_name: str
    request_id: str


@dataclass(frozen=True)
class RateLimitEvent:
    """One request refused by a per-tenant token bucket.

    Emitted by the serving gateway (:mod:`repro.gateway`) when a tenant's
    :class:`~repro.gateway.limits.TokenBucket` has no tokens at the
    request's logical arrival time — the per-tenant fairness backstop in
    front of the cluster, applied *before* routing so a limited request
    consumes no pipeline state (no RNG draws, no parked context).
    """

    time_s: float
    tenant: str
    request_id: str


@dataclass
class ServingReport:
    """Aggregates over one simulated run.

    Supplies every run-level quantity the evaluation section reports:
    throughput and latency summaries (Fig. 12), offload ratio against a
    named small-model set (Fig. 12a), per-model splits (Fig. 20's
    serving-load panels), and total serving cost (the Fig. 13 Pareto axis).
    ``scaling`` is the timeline of live replica changes when an
    :class:`~repro.runtime.sources.AutoscalerTickSource` drove the run.
    """

    records: list[ServedRequest] = field(default_factory=list)
    scaling: list[ScalingEvent] = field(default_factory=list)
    shed: list[ShedEvent] = field(default_factory=list)
    rate_limited: list[RateLimitEvent] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.records)

    @property
    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        start = min(r.arrival_s for r in self.records)
        end = max(r.finish_s for r in self.records)
        return end - start

    @property
    def throughput_rps(self) -> float:
        duration = self.duration_s
        return self.n / duration if duration > 0 else 0.0

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(r.e2e_latency_s for r in self.records)

    def ttft_summary(self) -> LatencySummary:
        return summarize_latencies(r.observed_ttft_s for r in self.records)

    def offload_ratio(self, small_models: set[str]) -> float:
        """Fraction of requests served by models in ``small_models``."""
        if not self.records:
            return 0.0
        offloaded = sum(1 for r in self.records if r.model_name in small_models)
        return offloaded / self.n

    def by_model(self) -> dict[str, "ServingReport"]:
        split: dict[str, ServingReport] = {}
        for record in self.records:
            split.setdefault(record.model_name, ServingReport()).records.append(record)
        return split

    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)

    @property
    def shed_rate(self) -> float:
        """Fraction of admitted-or-shed requests that were shed."""
        total = self.n + len(self.shed)
        return len(self.shed) / total if total else 0.0

    def slo_report(self) -> dict:
        """The run's SLO observables as a JSON-ready dict.

        The quantities an operator's dashboard (and the chaos suite's
        pinned goldens, ``tests/golden/slo_reports.json``) watch: served
        and shed counts, throughput, end-to-end and TTFT latency
        percentiles, per-model serve counts, and the scaling timeline.
        Floats are rounded to 9 decimal places so the dict is stable under
        JSON round-trips.
        """
        def r9(x: float) -> float:
            return round(float(x), 9)

        latency = self.latency_summary()
        ttft = self.ttft_summary()
        return {
            "n_served": self.n,
            "n_shed": len(self.shed),
            "n_rate_limited": len(self.rate_limited),
            "shed_rate": r9(self.shed_rate),
            "throughput_rps": r9(self.throughput_rps),
            "latency_s": {
                "p50": r9(latency.p50), "p90": r9(latency.p90),
                "p99": r9(latency.p99), "max": r9(latency.maximum),
            },
            "ttft_s": {
                "p50": r9(ttft.p50), "p90": r9(ttft.p90),
                "p99": r9(ttft.p99), "max": r9(ttft.maximum),
            },
            "per_model": {
                name: sub.n for name, sub in sorted(self.by_model().items())
            },
            "scaling": [
                [r9(e.time_s), e.model_name, e.applied_delta, e.replicas]
                for e in self.scaling
            ],
            "shed_timeline": [
                [r9(e.time_s), e.model_name] for e in self.shed
            ],
            "rate_limited_timeline": [
                [r9(e.time_s), e.tenant] for e in self.rate_limited
            ],
        }
