"""Per-request serving records and run-level reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import LatencySummary, summarize_latencies


@dataclass
class ServedRequest:
    """One completed request's serving-side observables."""

    request_id: str
    model_name: str
    arrival_s: float
    start_s: float       # when a replica slot was acquired
    finish_s: float
    ttft_s: float        # generation-side TTFT (excludes queueing)
    quality: float
    prompt_tokens: int
    output_tokens: int
    n_examples: int
    cost: float

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def e2e_latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def observed_ttft_s(self) -> float:
        """User-perceived TTFT: queueing plus prefill."""
        return self.queue_wait_s + self.ttft_s


@dataclass
class ServingReport:
    """Aggregates over one simulated run."""

    records: list[ServedRequest] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.records)

    @property
    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        start = min(r.arrival_s for r in self.records)
        end = max(r.finish_s for r in self.records)
        return end - start

    @property
    def throughput_rps(self) -> float:
        duration = self.duration_s
        return self.n / duration if duration > 0 else 0.0

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(r.e2e_latency_s for r in self.records)

    def ttft_summary(self) -> LatencySummary:
        return summarize_latencies(r.observed_ttft_s for r in self.records)

    def offload_ratio(self, small_models: set[str]) -> float:
        """Fraction of requests served by models in ``small_models``."""
        if not self.records:
            return 0.0
        offloaded = sum(1 for r in self.records if r.model_name in small_models)
        return offloaded / self.n

    def by_model(self) -> dict[str, "ServingReport"]:
        split: dict[str, ServingReport] = {}
        for record in self.records:
            split.setdefault(record.model_name, ServingReport()).records.append(record)
        return split

    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)
