"""The serving cluster: queues, replicas, and live scaling over the runtime.

Since the event-runtime refactor, the scheduling core lives in
:mod:`repro.runtime` — a deterministic :class:`~repro.runtime.loop.EventLoop`
plus pluggable event sources — and :class:`ClusterSimulator` is a thin
composition over it: the simulator owns cluster *state* (per-model FIFO
queues, continuous-batching slot accounting, the run report) and the event
*handlers* that mutate it, while arrivals, batch flushes, autoscaler ticks,
and maintenance ticks are produced by the sources attached to a run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.llm.icl import ExampleView
from repro.llm.model import SimulatedLLM
from repro.runtime.loop import Event, EventLoop
from repro.runtime.sources import FINISH, BatchFlushSource, TraceArrivalSource
from repro.serving.engine import BatchedRetrievalEngine
from repro.serving.records import (
    ScalingEvent,
    ServedRequest,
    ServingReport,
    ShedEvent,
)
from repro.workload.request import Request

# A routing decision: which model serves the request, with which examples.
RoutingDecision = tuple[str, list[ExampleView]]
RouterFn = Callable[[Request, "ClusterSimulator"], RoutingDecision]


@dataclass
class ModelDeployment:
    """How many replicas of a model the cluster runs.

    Mirrors the paper's section-6 setup, where the 16-GPU budget is split
    between small-model replicas (many, cheap) and large-model replicas
    (few, expensive); each replica sustains ``batch_slots`` concurrent
    requests, the continuous-batching abstraction of a vLLM worker.
    ``replicas`` is live state: :meth:`ClusterSimulator.apply_scaling`
    changes it mid-run when an autoscaler source drives the cluster.
    """

    model: SimulatedLLM
    replicas: int

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(
                f"{self.model.name}: replicas must be >= 1, got {self.replicas}"
            )

    @property
    def total_slots(self) -> int:
        return self.replicas * self.model.spec.batch_slots

    @property
    def total_gpus(self) -> int:
        return self.replicas * self.model.spec.gpus_per_replica


@dataclass
class ClusterConfig:
    """Cluster composition, checked against a GPU budget.

    The default budget is 16, the paper's 16xA100 evaluation cluster
    (section 6); pass ``gpu_budget=None`` for unconstrained what-if sweeps.
    The same budget bounds *live* scale-ups applied during a run (see
    :meth:`ClusterSimulator.apply_scaling`).
    """

    deployments: list[ModelDeployment]
    gpu_budget: int | None = 16   # the paper's 16xA100 cluster; None = unchecked
    max_queue_depth: int | None = None  # per-model backlog cap; None = unbounded

    def __post_init__(self) -> None:
        names = [d.model.name for d in self.deployments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model deployments: {names}")
        if self.gpu_budget is not None:
            used = sum(d.total_gpus for d in self.deployments)
            if used > self.gpu_budget:
                raise ValueError(
                    f"deployments need {used} GPUs, budget is {self.gpu_budget}"
                )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


class _ModelQueue:
    """FIFO queue plus slot accounting for one deployed model.

    The continuous-batching abstraction of the section-6 setup: a
    deployment exposes ``replicas * batch_slots`` concurrent slots (a vLLM
    worker's in-flight capacity, substituted), requests past that wait in
    FIFO order, and :attr:`load` — occupancy *including* queued work — is
    the utilization signal the section-4.2 router bias and the autoscaler
    both read.
    """

    def __init__(self, deployment: ModelDeployment) -> None:
        self.deployment = deployment
        self.pending: deque = deque()
        self.in_service = 0

    @property
    def free_slots(self) -> int:
        return self.deployment.total_slots - self.in_service

    @property
    def load(self) -> float:
        """Occupancy including queued work, relative to capacity."""
        capacity = self.deployment.total_slots
        return (self.in_service + len(self.pending)) / capacity


class ClusterSimulator:
    """Cluster state and event handlers over the deterministic runtime.

    The event model behind the paper's serving experiments (section 6's
    16xA100 cluster, Fig. 12/13): an ``arrival`` routes a request and
    enqueues it; a ``finish`` frees a continuous-batching slot and starts
    queued work; a ``flush`` dispatches a retrieval micro-batch; autoscale
    and maintenance ticks adjust capacity and curate the cache mid-run.
    Routing callbacks see the live simulator, so load-aware policies read
    :meth:`load` / :meth:`total_load` at decision time — the signal the
    paper's Request Router (section 4.2) biases on, and via
    :meth:`apply_scaling` the same signal resizes deployments live.

    :meth:`run` keeps the pre-runtime signature (arrivals + router) and
    composes the standard sources; :meth:`run_sources` accepts any
    :class:`~repro.runtime.sources.EventSource` composition for richer
    scenarios (open-loop load, live autoscaling, online maintenance).
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._queues = {d.model.name: _ModelQueue(d) for d in config.deployments}
        self._loop: EventLoop | None = None
        self._events_prior = 0   # processed by earlier runs' loops
        self.report = ServingReport()
        self.dropped: list[str] = []
        self._on_complete: Callable[[Request, ServedRequest], None] | None = None
        # Optional (model_name, request, now) -> extra seconds of TTFT,
        # installed by chaos sources (slow-shard injection); None = healthy.
        self.latency_penalty: Callable[[str, Request, float], float] | None = None

    # ----- state the router (and sources) can read ----------------------

    @property
    def now(self) -> float:
        """Simulated time of the active (or last) run."""
        return self._loop.now if self._loop is not None else 0.0

    @property
    def events_processed(self) -> int:
        """Events dispatched across this simulator's runs (cumulative,
        consistent with the accumulative :attr:`report`)."""
        current = self._loop.processed if self._loop is not None else 0
        return self._events_prior + current

    def load(self, model_name: str) -> float:
        return self._queue(model_name).load

    def total_load(self) -> float:
        """System-wide occupancy in [0, inf); > 1 means queues are growing."""
        slots = sum(q.deployment.total_slots for q in self._queues.values())
        busy = sum(q.in_service + len(q.pending) for q in self._queues.values())
        return busy / slots if slots else 0.0

    def model_names(self) -> list[str]:
        return list(self._queues)

    def total_gpus(self) -> int:
        return sum(q.deployment.total_gpus for q in self._queues.values())

    def deployment(self, model_name: str) -> ModelDeployment:
        return self._queue(model_name).deployment

    # ----- simulation ---------------------------------------------------

    def run(self, arrivals: list[tuple[float, Request]],
            router: RouterFn | BatchedRetrievalEngine,
            on_complete: Callable[[Request, ServedRequest], None] | None = None,
            ) -> ServingReport:
        """Simulate the full arrival sequence; returns the completed report.

        ``router`` is either a per-request callable or a
        :class:`~repro.serving.engine.BatchedRetrievalEngine`, in which case
        arrivals are micro-batched (size/timeout policy) before routing and
        the batching delay is charged to each request's queue wait.
        ``on_complete`` fires as each request finishes (simulation order), so
        online-learning policies can ingest feedback with realistic delay.
        """
        if hasattr(router, "route_batch"):
            sink = BatchFlushSource(router)
            sources = [TraceArrivalSource(arrivals, sink=sink), sink]
        else:
            sources = [TraceArrivalSource(arrivals, router=router)]
        return self.run_sources(sources, on_complete=on_complete)

    def run_sources(self, sources: Sequence,
                    on_complete: Callable[[Request, ServedRequest], None] | None = None,
                    ) -> ServingReport:
        """Drive an event-source composition to completion.

        Builds a fresh :class:`~repro.runtime.loop.EventLoop`, registers the
        cluster's own ``finish`` handler, attaches ``sources`` in order
        (attach order breaks same-time ties — put arrival sources first),
        and runs until the event heap drains.  Queue/replica state, the
        report, and :attr:`events_processed` carry over across runs on one
        simulator (matching the pre-runtime accumulation semantics); use a
        fresh ``ClusterSimulator`` per independently-measured run.
        """
        loop = self.start_sources(sources, on_complete=on_complete)
        loop.run()
        return self.report

    def start_sources(self, sources: Sequence,
                      on_complete: Callable[[Request, ServedRequest], None] | None = None,
                      ) -> EventLoop:
        """Open an *incremental* run: attach sources, but do not drain.

        Same setup as :meth:`run_sources` — fresh loop, ``finish`` handler,
        sources attached in order — returning the live loop instead of
        running it to completion.  The caller then interleaves its own
        work with :meth:`advance_to` / :meth:`run_pending`, which is how
        the serving gateway feeds network arrivals into the identical
        event machinery the batch simulator runs (the determinism-
        equivalence contract of ``docs/GATEWAY.md``).
        """
        if self._loop is not None:
            self._events_prior += self._loop.processed
        loop = EventLoop()
        self._loop = loop
        self._on_complete = on_complete
        loop.on(FINISH, self._handle_finish)
        for source in sources:
            source.attach(loop, self)
        return loop

    def advance_to(self, until: float) -> int:
        """Process events strictly before ``until``; ``now`` lands on it.

        Incremental-run primitive (see :meth:`start_sources`).  The strict
        bound mirrors the batch path's tie-break: an arrival injected *at*
        the new watermark must precede any completion scheduled at the
        same instant, exactly as pre-scheduled arrivals do in
        :meth:`run_sources` (lower insertion seq).  Returns the number of
        events processed.
        """
        if self._loop is None:
            raise RuntimeError("no active run: call start_sources() first")
        return self._loop.run_until(until)

    def run_pending(self) -> int:
        """Drain every scheduled event (completion chains included).

        Incremental-run primitive: ends the in-flight work of a session —
        the gateway's graceful drain — by running the loop to idle.  Only
        safe when no earlier-stamped arrivals can still be injected;
        ``now`` afterwards sits at the last completion.
        """
        if self._loop is None:
            raise RuntimeError("no active run: call start_sources() first")
        return self._loop.run()

    # ----- host surface the event sources drive --------------------------

    def enqueue(self, model_name: str, request: Request,
                examples: list[ExampleView], arrival_s: float) -> _ModelQueue | None:
        """Queue a routed request; returns its queue (callers drain it).

        ``arrival_s`` is the request's *original* arrival time, which may
        predate ``now`` on the batched path — micro-batching delay is
        charged to queue wait, as the section-7 latency accounting
        requires.  When :attr:`ClusterConfig.max_queue_depth` is set and
        the model's backlog has reached it, the request is *shed* instead:
        a :class:`~repro.serving.records.ShedEvent` lands in the report and
        ``None`` is returned (callers must skip the drain).
        """
        queue = self._queue(model_name)
        depth = self.config.max_queue_depth
        if depth is not None and len(queue.pending) >= depth:
            self.report.shed.append(ShedEvent(
                time_s=self.now, model_name=model_name,
                request_id=request.request_id,
            ))
            return None
        queue.pending.append((request, examples, arrival_s))
        return queue

    def drain(self, queue: _ModelQueue) -> None:
        """Start queued work while free continuous-batching slots remain.

        Each started request generates immediately (quality and token
        counts are decided at start time; section 6's latency model) and
        schedules its own ``finish`` event at start + TTFT + decode — the
        event chain that frees the slot and admits the next request, i.e.
        continuous batching as an event process.
        """
        while queue.pending and queue.free_slots > 0:
            request, examples, arrival_s = queue.pending.popleft()
            queue.in_service += 1
            result = queue.deployment.model.generate(request, examples)
            penalty = 0.0
            if self.latency_penalty is not None:
                penalty = self.latency_penalty(
                    queue.deployment.model.name, request, self.now
                )
            record = ServedRequest(
                request_id=request.request_id,
                model_name=result.model_name,
                arrival_s=arrival_s,
                start_s=self.now,
                finish_s=self.now + result.total_s + penalty,
                ttft_s=result.ttft_s + penalty,
                quality=result.quality,
                prompt_tokens=result.prompt_tokens,
                output_tokens=result.output_tokens,
                n_examples=result.n_examples,
                cost=result.cost,
            )
            self._loop.schedule(
                record.finish_s, FINISH,
                (queue.deployment.model.name, record, request),
            )

    def apply_scaling(self, model_name: str, replicas_delta: int) -> int:
        """Apply a live replica-count change, clamped to the GPU budget.

        Scale-ups never push the cluster past ``config.gpu_budget`` (the
        change is truncated to whatever headroom remains); scale-downs
        never drop below one replica.  In-flight requests keep their slots
        — after a scale-down a deployment can transiently run more requests
        than its new slot count, and simply starts no new work until it
        drains back under.  Returns the delta actually applied and records
        a :class:`~repro.serving.records.ScalingEvent` when non-zero.
        """
        queue = self._queue(model_name)
        deployment = queue.deployment
        target = deployment.replicas + replicas_delta
        budget = self.config.gpu_budget
        if budget is not None and replicas_delta > 0:
            headroom = budget - (self.total_gpus() - deployment.total_gpus)
            target = min(target, headroom // deployment.model.spec.gpus_per_replica)
        target = max(1, target)
        applied = target - deployment.replicas
        if applied != 0:
            deployment.replicas = target
            self.report.scaling.append(ScalingEvent(
                time_s=self.now,
                model_name=model_name,
                requested_delta=replicas_delta,
                applied_delta=applied,
                replicas=target,
                total_gpus=self.total_gpus(),
            ))
            if applied > 0:
                # New capacity starts queued work immediately.
                self.drain(queue)
        return applied

    # ----- internals ------------------------------------------------------

    def _queue(self, model_name: str) -> _ModelQueue:
        try:
            return self._queues[model_name]
        except KeyError:
            known = ", ".join(self._queues)
            raise KeyError(f"model {model_name!r} not deployed; have: {known}") from None

    def _handle_finish(self, event: Event) -> None:
        """A request completed: free its slot, record, learn, drain.

        ``on_complete`` fires here — in simulation order, at the finish
        timestamp — so online learning (router/proxy updates, admission)
        observes realistic serving delay rather than decision-time state;
        the section-4 feedback loops depend on that ordering.
        """
        model_name, record, request = event.payload
        queue = self._queue(model_name)
        queue.in_service -= 1
        self.report.records.append(record)
        if self._on_complete is not None:
            self._on_complete(request, record)
        self.drain(queue)
