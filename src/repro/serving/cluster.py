"""The discrete-event cluster simulator."""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.llm.icl import ExampleView
from repro.llm.model import SimulatedLLM
from repro.serving.engine import BatchedRetrievalEngine, RequestBatcher
from repro.serving.records import ServedRequest, ServingReport
from repro.workload.request import Request

# A routing decision: which model serves the request, with which examples.
RoutingDecision = tuple[str, list[ExampleView]]
RouterFn = Callable[[Request, "ClusterSimulator"], RoutingDecision]


@dataclass
class ModelDeployment:
    """How many replicas of a model the cluster runs.

    Mirrors the paper's section-6 setup, where the 16-GPU budget is split
    between small-model replicas (many, cheap) and large-model replicas
    (few, expensive); each replica sustains ``batch_slots`` concurrent
    requests, the continuous-batching abstraction of a vLLM worker.
    """

    model: SimulatedLLM
    replicas: int

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(
                f"{self.model.name}: replicas must be >= 1, got {self.replicas}"
            )

    @property
    def total_slots(self) -> int:
        return self.replicas * self.model.spec.batch_slots

    @property
    def total_gpus(self) -> int:
        return self.replicas * self.model.spec.gpus_per_replica


@dataclass
class ClusterConfig:
    """Cluster composition, checked against a GPU budget.

    The default budget is 16, the paper's 16xA100 evaluation cluster
    (section 6); pass ``gpu_budget=None`` for unconstrained what-if sweeps.
    """

    deployments: list[ModelDeployment]
    gpu_budget: int | None = 16   # the paper's 16xA100 cluster; None = unchecked

    def __post_init__(self) -> None:
        names = [d.model.name for d in self.deployments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model deployments: {names}")
        if self.gpu_budget is not None:
            used = sum(d.total_gpus for d in self.deployments)
            if used > self.gpu_budget:
                raise ValueError(
                    f"deployments need {used} GPUs, budget is {self.gpu_budget}"
                )


class _ModelQueue:
    """FIFO queue plus slot accounting for one deployed model."""

    def __init__(self, deployment: ModelDeployment) -> None:
        self.deployment = deployment
        self.pending: deque = deque()
        self.in_service = 0

    @property
    def free_slots(self) -> int:
        return self.deployment.total_slots - self.in_service

    @property
    def load(self) -> float:
        """Occupancy including queued work, relative to capacity."""
        capacity = self.deployment.total_slots
        return (self.in_service + len(self.pending)) / capacity


class ClusterSimulator:
    """Replays an arrival sequence through queues and replicas.

    The event model behind the paper's serving experiments (section 6's
    16xA100 cluster, Fig. 12/13): ``arrival`` routes a request and enqueues
    it; ``finish`` frees a continuous-batching slot and starts queued work;
    ``flush`` dispatches a retrieval micro-batch when a
    :class:`~repro.serving.engine.BatchedRetrievalEngine` is driving routing
    (the batcher's timeout is just another event).  The router callback sees
    the live simulator, so load-aware policies can read :meth:`load` /
    :meth:`total_load` at decision time — this is the signal the paper's
    Request Router (section 4.2) biases on.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._queues = {d.model.name: _ModelQueue(d) for d in config.deployments}
        self.now = 0.0
        self._events: list = []
        self._seq = itertools.count()
        self.report = ServingReport()
        self.dropped: list[str] = []
        self._on_complete: Callable[[Request, ServedRequest], None] | None = None
        self._batcher: RequestBatcher | None = None

    # ----- state the router can read -----------------------------------

    def load(self, model_name: str) -> float:
        return self._queue(model_name).load

    def total_load(self) -> float:
        """System-wide occupancy in [0, inf); > 1 means queues are growing."""
        slots = sum(q.deployment.total_slots for q in self._queues.values())
        busy = sum(q.in_service + len(q.pending) for q in self._queues.values())
        return busy / slots if slots else 0.0

    def model_names(self) -> list[str]:
        return list(self._queues)

    def total_gpus(self) -> int:
        return sum(q.deployment.total_gpus for q in self._queues.values())

    # ----- simulation ---------------------------------------------------

    def run(self, arrivals: list[tuple[float, Request]],
            router: RouterFn | BatchedRetrievalEngine,
            on_complete: Callable[[Request, ServedRequest], None] | None = None,
            ) -> ServingReport:
        """Simulate the full arrival sequence; returns the completed report.

        ``router`` is either a per-request callable or a
        :class:`~repro.serving.engine.BatchedRetrievalEngine`, in which case
        arrivals are micro-batched (size/timeout policy) before routing and
        the batching delay is charged to each request's queue wait.
        ``on_complete`` fires as each request finishes (simulation order), so
        online-learning policies can ingest feedback with realistic delay.
        """
        self._on_complete = on_complete
        batched = hasattr(router, "route_batch")
        if batched:
            self._batcher = router.make_batcher()
        for timestamp, request in arrivals:
            self._push(timestamp, "arrival", (request, router))
        while self._events:
            timestamp, _, kind, payload = heapq.heappop(self._events)
            self.now = timestamp
            if kind == "arrival":
                if batched:
                    self._handle_batched_arrival(*payload)
                else:
                    self._handle_arrival(*payload)
            elif kind == "flush":
                self._handle_flush(*payload)
            else:
                self._handle_finish(payload)
        return self.report

    def _push(self, timestamp: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (timestamp, next(self._seq), kind, payload))

    def _queue(self, model_name: str) -> _ModelQueue:
        try:
            return self._queues[model_name]
        except KeyError:
            known = ", ".join(self._queues)
            raise KeyError(f"model {model_name!r} not deployed; have: {known}") from None

    def _handle_arrival(self, request: Request, router: RouterFn) -> None:
        model_name, examples = router(request, self)
        queue = self._queue(model_name)
        queue.pending.append((request, examples, self.now))
        self._drain(queue)

    def _handle_batched_arrival(self, request: Request,
                                engine: BatchedRetrievalEngine) -> None:
        opened = len(self._batcher) == 0
        full = self._batcher.add((request, self.now), self.now)
        if full is not None:
            self._dispatch_batch(full, engine)
        elif opened:
            # First item of a new batch: arm its timeout flush.  The
            # generation stamp lets a stale timer (batch already size-
            # flushed) fall through as a no-op.
            self._push(self._batcher.deadline, "flush",
                       (engine, self._batcher.generation))

    def _handle_flush(self, engine: BatchedRetrievalEngine,
                      generation: int) -> None:
        if self._batcher.generation != generation:
            return  # that batch already dispatched on size
        batch = self._batcher.flush()
        if batch:
            self._dispatch_batch(batch, engine)

    def _dispatch_batch(self, batch: list[tuple[Request, float]],
                        engine: BatchedRetrievalEngine) -> None:
        """Route a micro-batch and enqueue each request at its arrival time."""
        requests = [request for request, _ in batch]
        decisions = engine.route_batch(requests, self)
        touched = []
        for (request, arrival_s), (model_name, examples) in zip(batch, decisions):
            queue = self._queue(model_name)
            queue.pending.append((request, examples, arrival_s))
            touched.append(queue)
        for queue in touched:
            self._drain(queue)

    def _drain(self, queue: _ModelQueue) -> None:
        while queue.pending and queue.free_slots > 0:
            request, examples, arrival_s = queue.pending.popleft()
            queue.in_service += 1
            result = queue.deployment.model.generate(request, examples)
            record = ServedRequest(
                request_id=request.request_id,
                model_name=result.model_name,
                arrival_s=arrival_s,
                start_s=self.now,
                finish_s=self.now + result.total_s,
                ttft_s=result.ttft_s,
                quality=result.quality,
                prompt_tokens=result.prompt_tokens,
                output_tokens=result.output_tokens,
                n_examples=result.n_examples,
                cost=result.cost,
            )
            self._push(
                record.finish_s, "finish",
                (queue.deployment.model.name, record, request),
            )

    def _handle_finish(self, payload) -> None:
        model_name, record, request = payload
        queue = self._queue(model_name)
        queue.in_service -= 1
        self.report.records.append(record)
        if self._on_complete is not None:
            self._on_complete(request, record)
        self._drain(queue)
