"""Bias-signal autoscaling (paper section 4.2).

"Importantly, the persistent magnitude of this applied bias can be used as a
signal for infrastructure auto-scaling."  The router's tanh bias is only
non-zero while the cluster is genuinely overloaded, so a sustained bias is a
clean scale-up trigger; a sustained zero bias with low utilization is the
scale-down trigger.

:class:`BiasAutoscaler` consumes periodic (bias, utilization) observations
and recommends replica-count changes for the small-model tier (scaling the
cheap tier is how IC-Cache absorbs load).  It is deliberately conservative:
hysteresis on both thresholds plus a cooldown between actions, the standard
guards against oscillation.

Live application: :class:`repro.runtime.sources.AutoscalerTickSource` runs
this control loop on the event clock during a serving run and applies each
:class:`ScalingDecision` through
:meth:`repro.serving.cluster.ClusterSimulator.apply_scaling`, which clamps
scale-ups to the cluster's GPU budget and scale-downs to one replica.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import EMA


@dataclass
class ScalingDecision:
    """One autoscaler recommendation."""

    action: str            # "scale_up" | "scale_down" | "hold"
    replicas_delta: int
    bias_ema: float
    utilization_ema: float


class BiasAutoscaler:
    """Hysteresis + cooldown autoscaler over the router's bias signal."""

    def __init__(self, scale_up_bias: float = 0.5, scale_down_bias: float = 0.05,
                 scale_down_utilization: float = 0.3, cooldown_steps: int = 10,
                 ema_alpha: float = 0.2, max_step: int = 2) -> None:
        if scale_down_bias >= scale_up_bias:
            raise ValueError(
                "hysteresis requires scale_down_bias < scale_up_bias, got "
                f"{scale_down_bias} >= {scale_up_bias}"
            )
        if cooldown_steps < 0 or max_step < 1:
            raise ValueError("cooldown_steps must be >= 0 and max_step >= 1")
        self.scale_up_bias = scale_up_bias
        self.scale_down_bias = scale_down_bias
        self.scale_down_utilization = scale_down_utilization
        self.cooldown_steps = cooldown_steps
        self.max_step = max_step
        self.bias_ema = EMA(alpha=ema_alpha)
        self.utilization_ema = EMA(alpha=ema_alpha)
        self._cooldown = 0
        self.actions: list[ScalingDecision] = []

    def observe(self, bias: float, utilization: float) -> ScalingDecision:
        """Feed one control-period observation; returns the recommendation."""
        if bias < 0 or utilization < 0:
            raise ValueError("bias and utilization must be non-negative")
        bias_avg = self.bias_ema.update(bias)
        util_avg = self.utilization_ema.update(utilization)

        if self._cooldown > 0:
            self._cooldown -= 1
            decision = ScalingDecision("hold", 0, bias_avg, util_avg)
        elif bias_avg >= self.scale_up_bias:
            # Sustained overload bias: add capacity proportional to how
            # saturated the signal is, capped by max_step.
            delta = min(self.max_step,
                        1 + int(bias_avg > 2 * self.scale_up_bias))
            self._cooldown = self.cooldown_steps
            decision = ScalingDecision("scale_up", delta, bias_avg, util_avg)
        elif (bias_avg <= self.scale_down_bias
              and util_avg <= self.scale_down_utilization):
            self._cooldown = self.cooldown_steps
            decision = ScalingDecision("scale_down", -1, bias_avg, util_avg)
        else:
            decision = ScalingDecision("hold", 0, bias_avg, util_avg)
        self.actions.append(decision)
        return decision

    @property
    def net_replicas_delta(self) -> int:
        """Cumulative recommended change since construction."""
        return sum(d.replicas_delta for d in self.actions)
