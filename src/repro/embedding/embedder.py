"""Embedder implementations.

See the package docstring for the role each embedder plays.  Both return
unit-norm float64 vectors so that dot products are cosine similarities.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.utils.rng import make_rng, stable_hash

_EPS = 1e-12


class Embedder(Protocol):
    """Anything that maps text (plus optional latent) to a dense vector."""

    dim: int

    def embed(self, text: str, latent: np.ndarray | None = None) -> np.ndarray:
        """Return a unit-norm embedding of ``text``."""
        ...


def _unit(vec: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vec))
    if norm < _EPS:
        # Degenerate input: fall back to a fixed basis vector so downstream
        # cosine math stays well-defined.
        out = np.zeros_like(vec)
        out[0] = 1.0
        return out
    return vec / norm


class LatentEmbedder:
    """Recovers a request's ground-truth latent vector with encoder noise.

    ``noise_scale`` models the imperfection of a real text encoder: 0.0 means
    the embedding *is* the latent semantics, larger values blur topical
    structure.  The noise is a deterministic function of the text so repeated
    embeddings of the same request agree (real encoders are deterministic).
    """

    def __init__(self, dim: int = 64, noise_scale: float = 0.05) -> None:
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        if noise_scale < 0:
            raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
        self.dim = dim
        self.noise_scale = noise_scale
        # The latent-free fallback is stateless given (dim, seed); building
        # it once here instead of per embed() call avoids regenerating its
        # (buckets, dim) projection matrix on every free-text request.
        self._fallback = HashingEmbedder(dim=dim)

    def embed(self, text: str, latent: np.ndarray | None = None) -> np.ndarray:
        if latent is None:
            # No latent available (e.g. free text typed by a user): degrade
            # gracefully to the hashing path at the same dimensionality.
            return self._fallback.embed(text)
        vec = np.asarray(latent, dtype=float)
        if vec.shape != (self.dim,):
            raise ValueError(f"latent dim {vec.shape} != embedder dim ({self.dim},)")
        if self.noise_scale > 0:
            noise_rng = make_rng(stable_hash("latent-noise", text))
            vec = vec + noise_rng.normal(0.0, self.noise_scale, size=self.dim)
        return _unit(vec)


class HashingEmbedder:
    """Hashed character n-grams + fixed random projection.

    Deterministic, vocabulary-free, and cheap — the standard feature-hashing
    construction.  Similar strings share n-grams and therefore land close in
    the embedding space, which is all the retrieval pipeline needs.
    """

    def __init__(self, dim: int = 64, ngram: int = 3, buckets: int = 4096,
                 seed: int = 7) -> None:
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        if ngram < 1:
            raise ValueError(f"ngram must be >= 1, got {ngram}")
        if buckets < dim:
            raise ValueError(f"buckets ({buckets}) must be >= dim ({dim})")
        self.dim = dim
        self.ngram = ngram
        self.buckets = buckets
        # A fixed projection shared by every embed() call makes the embedder a
        # pure function of its input text.
        proj_rng = make_rng(stable_hash("hashing-embedder", seed, dim, buckets))
        self._projection = proj_rng.normal(0.0, 1.0 / np.sqrt(dim), size=(buckets, dim))

    def embed(self, text: str, latent: np.ndarray | None = None) -> np.ndarray:
        counts = np.zeros(self.buckets)
        padded = f" {text.lower().strip()} "
        if len(padded) < self.ngram:
            padded = padded.ljust(self.ngram)
        for i in range(len(padded) - self.ngram + 1):
            gram = padded[i : i + self.ngram]
            counts[stable_hash("ngram", gram) % self.buckets] += 1.0
        if counts.sum() > 0:
            counts = counts / np.linalg.norm(counts)
        return _unit(counts @ self._projection)
