"""Cosine similarity helpers.

The paper measures request similarity as cosine similarity in [0, 1]
(section 2.3).  Raw cosine lies in [-1, 1]; embeddings produced by the
repo's embedders are non-negative-leaning but not strictly so, so callers
that need the paper's [0, 1] convention use ``rescaled=True``.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def cosine_similarity(a: np.ndarray, b: np.ndarray, rescaled: bool = False) -> float:
    """Cosine similarity of two vectors; 0 when either vector is all-zero.

    With ``rescaled=True`` the value is mapped from [-1, 1] to [0, 1],
    matching the paper's similarity scale where 1 means identical requests.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < _EPS:
        return 0.0
    sim = float(np.dot(a, b) / denom)
    sim = max(-1.0, min(1.0, sim))
    if rescaled:
        sim = (sim + 1.0) / 2.0
    return sim


def cosine_similarity_matrix(
    queries: np.ndarray, corpus: np.ndarray, rescaled: bool = False
) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``queries`` and ``corpus``."""
    q = np.asarray(queries, dtype=float)
    c = np.asarray(corpus, dtype=float)
    if q.ndim != 2 or c.ndim != 2 or q.shape[1] != c.shape[1]:
        raise ValueError(f"expected 2-D inputs with equal dim: {q.shape}, {c.shape}")
    qn = q / np.maximum(np.linalg.norm(q, axis=1, keepdims=True), _EPS)
    cn = c / np.maximum(np.linalg.norm(c, axis=1, keepdims=True), _EPS)
    sims = np.clip(qn @ cn.T, -1.0, 1.0)
    if rescaled:
        sims = (sims + 1.0) / 2.0
    return sims
