"""Dense text embedders (the paper's T5 encoder, substituted).

The paper uses dense embeddings purely through cosine similarity between
requests (section 2.3) and between a request and cached examples (section
4.1).  Two embedders are provided:

* :class:`LatentEmbedder` — for synthetic workloads whose requests carry a
  ground-truth latent topic vector; it "recovers" the latent with
  configurable encoder noise.  This preserves the similarity structure of the
  real datasets (Fig. 3a) while keeping it controllable.
* :class:`HashingEmbedder` — for raw strings with no latent: hashed character
  n-grams followed by a fixed random projection, the classic
  feature-hashing trick.
"""

from repro.embedding.embedder import Embedder, HashingEmbedder, LatentEmbedder
from repro.embedding.similarity import cosine_similarity, cosine_similarity_matrix

__all__ = [
    "Embedder",
    "HashingEmbedder",
    "LatentEmbedder",
    "cosine_similarity",
    "cosine_similarity_matrix",
]
