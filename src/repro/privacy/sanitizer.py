"""Pattern-based PII sanitizer (spaCy NER, substituted).

The Example Manager runs this on both request and response text before
admission.  Patterns cover the structured identifier classes a production
scrubber must catch; each match is replaced with a typed placeholder so the
example remains useful as an in-context demonstration.
"""

from __future__ import annotations

import re

# Order matters: more specific patterns (credit card, SSN) run before the
# generic number-ish ones would otherwise swallow them.
PII_PATTERNS: list[tuple[str, re.Pattern]] = [
    ("EMAIL", re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.-]+\b")),
    ("CREDIT_CARD", re.compile(r"\b(?:\d[ -]?){13,16}\b")),
    ("SSN", re.compile(r"\b\d{3}-\d{2}-\d{4}\b")),
    # A leading \b would fail before "(" (both sides non-word chars), so the
    # left edge uses a negative lookbehind instead.
    ("PHONE", re.compile(
        r"(?<!\w)(?:\+?\d{1,3}[ .-]?)?(?:\(\d{3}\)|\d{3})[ .-]?\d{3}[ .-]?\d{4}\b"
    )),
    ("IP_ADDRESS", re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b")),
    ("URL_CREDENTIAL", re.compile(r"://[^/\s:@]+:[^/\s:@]+@")),
]


def sanitize_text(text: str) -> str:
    """Replace recognized PII spans with typed placeholders."""
    cleaned = text
    for label, pattern in PII_PATTERNS:
        cleaned = pattern.sub(f"[{label}]", cleaned)
    return cleaned
