"""Privacy controls for the example cache (section 4.3).

* :func:`sanitize_text` — client-side PII scrubbing before admission
  (the paper uses spaCy NER; here a pattern-based scrubber covering the same
  identifier classes: emails, phone numbers, SSNs, credit cards, IPs).
* :class:`DPSynthesizer` — a differentially-private synthetic example pool:
  examples are re-synthesized from Gaussian-mechanism-noised latents so no
  original example is individually identifiable (Fig. 21's configuration).
"""

from repro.privacy.sanitizer import PII_PATTERNS, sanitize_text
from repro.privacy.dp_synth import DPSynthesizer

__all__ = ["PII_PATTERNS", "sanitize_text", "DPSynthesizer"]
