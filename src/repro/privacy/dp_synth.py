"""Differentially-private synthetic example pool (section 4.3, Fig. 21).

The strict-privacy deployment replaces the raw historical cache with
DP-synthesized examples.  The synthesizer here applies the Gaussian mechanism
to each example's latent semantics and re-renders template text, then marks
the synthetic example with a small quality discount — DP noise blurs exactly
the topical precision that makes an example a good teacher, which is the
"slight quality decrease" Fig. 21 measures.

Privacy accounting uses the classic Gaussian-mechanism calibration
sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon per released vector.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.example import Example
from repro.utils.rng import make_rng, stable_hash
from repro.workload.request import Request


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float = 1.0) -> float:
    """Noise scale of the Gaussian mechanism for (epsilon, delta)-DP."""
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError(f"invalid privacy budget: epsilon={epsilon}, delta={delta}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


class DPSynthesizer:
    """Synthesizes a DP example pool from an existing cache's examples."""

    def __init__(self, epsilon: float = 4.0, delta: float = 1e-5,
                 quality_discount: float = 0.05, seed: int = 0) -> None:
        self.epsilon = epsilon
        self.delta = delta
        self.sigma = gaussian_sigma(epsilon, delta)
        self.quality_discount = quality_discount
        self._rng = make_rng(stable_hash("dp-synth", seed))

    def synthesize(self, examples: list[Example]) -> list[Example]:
        """A DP pool: one synthetic example per original (same pool size)."""
        return [self._synthesize_one(ex, i) for i, ex in enumerate(examples)]

    def _synthesize_one(self, original: Example, index: int) -> Example:
        # Latents are unit vectors, so per-example L2 sensitivity is bounded
        # by 2; scale to the embedding dimension.
        dim = original.request.latent.shape[0]
        noise = self._rng.normal(0.0, self.sigma / math.sqrt(dim), size=dim)
        latent = original.request.latent + noise
        latent = latent / max(1e-12, float(np.linalg.norm(latent)))

        emb_noise = self._rng.normal(
            0.0, self.sigma / math.sqrt(dim), size=original.embedding.shape
        )
        embedding = original.embedding + emb_noise
        embedding = embedding / max(1e-12, float(np.linalg.norm(embedding)))

        request = Request(
            request_id=f"dp-{index}-{original.request.request_id}",
            dataset=original.request.dataset,
            task=original.request.task,
            text=f"[dp-synthetic] {original.request.text}",
            latent=latent,
            topic_id=original.request.topic_id,
            difficulty=original.request.difficulty,
            prompt_tokens=original.request.prompt_tokens,
            target_output_tokens=original.request.target_output_tokens,
        )
        quality = float(np.clip(
            original.quality - self._rng.uniform(0, 2 * self.quality_discount),
            0.0, 1.0,
        ))
        return Example(
            example_id=f"dp-{index}",
            request=request,
            response_text=f"[dp-synthetic] {original.response_text}",
            embedding=embedding,
            quality=quality,
            source_model=original.source_model,
            source_cost=original.source_cost,
            created_at=original.created_at,
        )
