"""Built-in pipeline middleware.

* :class:`FaultBypassMiddleware` — the section-5 fault-tolerance bypass,
  expressed as an ``on_failure`` handler instead of inline try/except in
  three separate serve paths.
* :class:`LearningHook` — runs a learning callback after each completed
  request (how :class:`ICCacheService` attaches its feedback loops).
* :class:`FaultInjectionMiddleware` — raises on a caller-supplied schedule,
  for chaos tests of the bypass at both granularities (whole-batch
  retrieval failure vs per-request routing failure).
"""

from __future__ import annotations

from typing import Callable

from repro.pipeline.context import ServeContext
from repro.pipeline.policies import plain_choice
from repro.pipeline.protocols import ServeMiddleware
from repro.pipeline.stats import ServiceStats


class FaultBypassMiddleware(ServeMiddleware):
    """Section-5 fault tolerance: failed requests go to the fallback model.

    "If a failed request to the Example Retriever or Request Router is
    detected, the system automatically bypasses these components and routes
    the request directly to the inference backend."  A retrieval failure
    arrives here once per request of the failed batch; a routing failure
    for just the one request — the granularity is decided upstream by the
    pipeline, this handler only repairs the context.
    """

    def __init__(self, fallback_model: str,
                 stats: ServiceStats | None = None) -> None:
        self.fallback_model = fallback_model
        self.stats = stats

    def on_failure(self, ctx: ServeContext, stage: str,
                   exc: Exception) -> bool:
        ctx.examples = []
        ctx.choice = plain_choice(ctx, self.fallback_model)
        ctx.bypassed = True
        if self.stats is not None:
            self.stats.bypasses += 1
        return True


class LearningHook(ServeMiddleware):
    """Invoke ``fn(ctx)`` after each completed request, before admission."""

    def __init__(self, fn: Callable[[ServeContext], None]) -> None:
        self._fn = fn

    def after_complete(self, ctx: ServeContext) -> None:
        self._fn(ctx)


class FaultInjectionMiddleware(ServeMiddleware):
    """Deterministic failure injection for bypass testing.

    ``fail_retrieval(contexts)`` / ``fail_route(ctx)`` are predicates; when
    one returns True the corresponding stage hook raises, which the
    pipeline treats exactly like the stage itself failing.  Counters record
    how many failures were injected.
    """

    def __init__(
        self,
        fail_retrieval: Callable[[list[ServeContext]], bool] | None = None,
        fail_route: Callable[[ServeContext], bool] | None = None,
    ) -> None:
        self.fail_retrieval = fail_retrieval
        self.fail_route = fail_route
        self.retrieval_failures = 0
        self.route_failures = 0

    def before_retrieve(self, contexts: list[ServeContext]) -> None:
        if self.fail_retrieval is not None and self.fail_retrieval(contexts):
            self.retrieval_failures += 1
            raise ConnectionError("injected: retrieval replicas unreachable")

    def before_route(self, ctx: ServeContext) -> None:
        if self.fail_route is not None and self.fail_route(ctx):
            self.route_failures += 1
            raise ConnectionError(
                f"injected: router crash on {ctx.request.request_id}"
            )
