"""IC-Cache's own stage policies, plus generic null/fixed building blocks.

These adapt the paper's components (sections 4.1-4.3) to the stage
protocols of :mod:`repro.pipeline.protocols`; :class:`ICCacheService`
composes them into its pipeline.  The null/fixed policies are the degenerate
cases every other serving system is built from (RouteLLM has no retrieval,
RAG has fixed routing, ...), and :class:`RandomRetentionAdmission` turns
the Fig. 19 naive-retention baseline into a drop-in admission policy.
"""

from __future__ import annotations

import numpy as np

from repro.core.manager import ExampleManager
from repro.core.router import BanditRouter, RoutingChoice, routing_features
from repro.core.selector import ExampleSelector, ScoredExample
from repro.pipeline.context import ServeContext
from repro.pipeline.registry import register
from repro.utils.rng import make_rng, stable_hash


class ICRetrieval:
    """The two-stage Example Selector (section 4.1) as a RetrievalPolicy.

    A batch of one takes the single-request ``select`` path; larger batches
    take the vectorized ``select_batch`` path (decision-identical, one
    index pass for the whole batch).
    """

    def __init__(self, selector: ExampleSelector, enabled: bool = True) -> None:
        self.selector = selector
        self.enabled = enabled

    def retrieve_batch(self, contexts: list[ServeContext]
                       ) -> list[list[ScoredExample]]:
        if not self.enabled:
            return [[] for _ in contexts]
        if len(contexts) == 1:
            return [self.selector.select(contexts[0].embedding)]
        return self.selector.select_batch(
            np.stack([ctx.embedding for ctx in contexts])
        )


class ICRouting:
    """The bandit Request Router (section 4.2) as a RoutingPolicy.

    With routing disabled (ablations), every request goes to the fixed
    small model — the always-offload arm of Fig. 16.
    """

    def __init__(self, router: BanditRouter, small_name: str,
                 enabled: bool = True) -> None:
        self.router = router
        self.small_name = small_name
        self.enabled = enabled

    def route(self, ctx: ServeContext) -> RoutingChoice:
        if not self.enabled:
            return plain_choice(ctx, self.small_name)
        return self.router.route(ctx.request, ctx.examples, ctx.load)


class ICAdmission:
    """The Example Manager's admission flow (section 4.3) as an
    AdmissionPolicy: sanitize -> dedupe -> admit, with the serving model's
    normalized cost feeding the G(e) bookkeeping."""

    def __init__(self, manager: ExampleManager,
                 arm_costs: dict[str, float]) -> None:
        self.manager = manager
        self.arm_costs = arm_costs

    def admit(self, ctx: ServeContext):
        return self.manager.admit(
            ctx.request, ctx.result, ctx.embedding,
            self.arm_costs[ctx.choice.model_name],
        )


class NullRetrieval:
    """No in-context material, ever (RouteLLM, always-X baselines)."""

    def retrieve_batch(self, contexts: list[ServeContext]
                       ) -> list[list[ScoredExample]]:
        return [[] for _ in contexts]


class FixedModelRouting:
    """Every request to one fixed model (always-small / always-large)."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name

    def route(self, ctx: ServeContext) -> RoutingChoice:
        return plain_choice(ctx, self.model_name)


class NullAdmission:
    """Served pairs contribute nothing back (stateless baselines)."""

    def admit(self, ctx: ServeContext):
        return None


class RandomRetentionAdmission:
    """Fig. 19's naive baseline as an AdmissionPolicy: keep a random
    ``fraction`` of candidate admissions instead of utility-aware retention.

    Wraps another admission policy (usually :class:`ICAdmission`) and
    forwards a seeded-random subset of requests to it, which holds the
    cache near ``fraction`` of the utility-aware policy's size.
    """

    def __init__(self, inner, fraction: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.inner = inner
        self.fraction = fraction
        self._rng = make_rng(stable_hash("naive-admission", seed))

    def admit(self, ctx: ServeContext):
        if self._rng.uniform() >= self.fraction:
            return None
        return self.inner.admit(ctx)


def plain_choice(ctx: ServeContext, model_name: str) -> RoutingChoice:
    """A RoutingChoice carrying no bandit state.

    The one construction every non-bandit decision shares: fixed routing,
    hit-aware routing, and the section-5 bypass all route *somewhere*
    without arm posteriors, so their choices differ only in the model name.
    """
    return RoutingChoice(
        model_name=model_name,
        features=routing_features(ctx.request, ctx.examples),
        mean_scores={}, biased_scores={},
        solicit_feedback=False,
    )


# -- registry entries (component granularity) -----------------------------
# Builders take ``service=`` (the backing ICCacheService) so swapped-in
# components can reuse its selector/router/manager/config.

@register("retrieval", "ic-cache")
def _ic_retrieval(service, **kwargs):
    # The service's own instance, not a copy: the live
    # selector_enabled/router_enabled ablation setters on ICCacheService
    # delegate to these objects and must keep working after a swap.
    return service._ic_retrieval


@register("retrieval", "null")
def _null_retrieval(service=None, **kwargs):
    return NullRetrieval()


@register("routing", "ic-cache")
def _ic_routing(service, **kwargs):
    return service._ic_routing


@register("routing", "fixed-small")
def _fixed_small(service, **kwargs):
    return FixedModelRouting(service.small_name)


@register("routing", "fixed-large")
def _fixed_large(service, **kwargs):
    return FixedModelRouting(service.large_name)


@register("admission", "ic-cache")
def _ic_admission(service, **kwargs):
    return ICAdmission(service.manager, service.arm_costs)


@register("admission", "null")
def _null_admission(service=None, **kwargs):
    return NullAdmission()


@register("admission", "naive-random")
def _naive_admission(service, fraction: float = 0.5, **kwargs):
    return RandomRetentionAdmission(
        ICAdmission(service.manager, service.arm_costs),
        fraction=fraction, seed=service.config.seed,
    )
