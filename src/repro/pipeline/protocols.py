"""The serving-policy API: stage protocols and the middleware hook surface.

Any object implementing these protocols is a first-class citizen of the
serve loop — IC-Cache's own selector/router/manager, the paper's baselines
(semantic caching, RAG, RouteLLM, naive retention), or a user-defined
policy registered via :mod:`repro.pipeline.registry`.  The pipeline core
(:class:`repro.pipeline.core.ICCachePipeline`) is the only serve loop in
the repo; everything else plugs into it through this surface.

Stage protocols
---------------

* :class:`RetrievalPolicy` — ``retrieve_batch(contexts)``: context to
  prepend, batch granularity so vectorized index passes amortize.
* :class:`RoutingPolicy` — ``route(ctx)``: which model serves the request.
* :class:`AdmissionPolicy` — ``admit(ctx)``: what (if anything) the served
  pair contributes back to the cache.

Middleware
----------

:class:`ServeMiddleware` subclasses hook between stages.  Hook order per
micro-batch::

    on_batch(contexts)                # once, after embedding
    before_retrieve(contexts)         # once; raising fails the whole batch
    <RetrievalPolicy.retrieve_batch>
    after_retrieve(ctx)               # per request
    before_route(ctx)                 # per request; raising fails that request
    <RoutingPolicy.route>
    after_route(ctx)
    ...generation / cluster completion...
    after_complete(ctx)               # per request, result attached
    <AdmissionPolicy.admit>

``on_failure(ctx, stage, exc)`` fires when a stage (or its before-hook)
raises; the first middleware returning ``True`` has handled the failure
(it must leave ``ctx.choice`` set), otherwise the exception propagates.
The section-5 fault-tolerance bypass is exactly such a middleware
(:class:`repro.pipeline.middleware.FaultBypassMiddleware`).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.example import Example
from repro.core.router import RoutingChoice
from repro.core.selector import ScoredExample
from repro.pipeline.context import ServeContext


@runtime_checkable
class RetrievalPolicy(Protocol):
    """Supplies the in-context material for a micro-batch of requests."""

    def retrieve_batch(self, contexts: list[ServeContext]
                       ) -> list[list[ScoredExample]]:
        """One example combination per context (empty list = no context).

        Called once per micro-batch (a single inline request is a batch of
        one) with ``ctx.embedding`` already populated.  Raising fails the
        *whole batch* — the granularity of the section-5 retrieval bypass.
        """
        ...


@runtime_checkable
class RoutingPolicy(Protocol):
    """Picks the serving model for one request."""

    def route(self, ctx: ServeContext) -> RoutingChoice:
        """A routing decision given ``ctx.request``/``examples``/``load``.

        Called per request after retrieval.  Raising fails *that request
        only* — the granularity of the section-5 routing bypass.
        """
        ...


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides what a completed request contributes back to the cache."""

    def admit(self, ctx: ServeContext) -> Example | None:
        """Admit the served pair; returns the new example or ``None``.

        Called per request after ``ctx.result`` is attached (inline
        generation or cluster completion) and after ``after_complete``
        middleware has run.
        """
        ...


class ServeMiddleware:
    """No-op base class for pipeline middleware; override what you need.

    See the module docstring for hook ordering.  Hooks run in the order
    middleware was registered; ``on_failure`` stops at the first handler
    that returns ``True``.
    """

    def on_batch(self, contexts: list[ServeContext]) -> None:
        """A micro-batch entered the pipeline (embeddings populated)."""

    def before_retrieve(self, contexts: list[ServeContext]) -> None:
        """About to retrieve; raising injects a whole-batch failure."""

    def after_retrieve(self, ctx: ServeContext) -> None:
        """Retrieval produced ``ctx.examples`` for this request."""

    def before_route(self, ctx: ServeContext) -> None:
        """About to route; raising injects a per-request failure."""

    def after_route(self, ctx: ServeContext) -> None:
        """Routing produced ``ctx.choice`` for this request."""

    def on_failure(self, ctx: ServeContext, stage: str,
                   exc: Exception) -> bool:
        """A stage failed; return ``True`` if this middleware handled it."""
        return False

    def after_complete(self, ctx: ServeContext) -> None:
        """``ctx.result`` is attached; runs before admission."""

    def on_maintenance(self, service) -> None:
        """An online maintenance pass (decay/evict/replay) just ran.

        Fired by ``ICCacheService.run_maintenance`` through the same
        middleware chain as the per-request hooks, so observers of cache
        lifecycle events keep a stable ordering relative to
        :class:`~repro.pipeline.middleware.LearningHook` — maintenance
        never interleaves inside a request's hook sequence, it lands
        between completed requests exactly where the runtime's
        maintenance tick fired.
        """

    def on_checkpoint(self, service) -> None:
        """A durable-state snapshot was just written.

        Fired by ``ICCacheService.save`` (and therefore by every
        :class:`~repro.persistence.wal.Checkpointer` checkpoint or
        compaction, and every runtime
        :class:`~repro.runtime.sources.CheckpointTickSource` tick) through
        the same ordered middleware chain as ``on_maintenance`` — so
        observers can, e.g., ship the snapshot or cut metrics at exactly
        the request boundary the checkpoint captured.
        """
