"""The paper's comparison systems as pluggable serving policies.

Section 6 compares IC-Cache against semantic caching, RAG, RouteLLM, and
naive cache retention.  Here each becomes a first-class citizen of the one
serve loop: stage policies implementing the protocols of
:mod:`repro.pipeline.protocols`, plus registered ``policy`` builders that
assemble a complete :class:`~repro.pipeline.core.ICCachePipeline` — so any
baseline drops into :class:`ClusterSimulator` or
:class:`BatchedRetrievalEngine` exactly where IC-Cache does.

Modeling notes for the shared generation path:

* **Semantic cache** — a hit is repurposed as an in-context example on the
  small model (the Fig. 14 "Semantic w/ IC" rule) rather than returned
  verbatim: the cluster always generates, so verbatim reuse has no serving
  analogue.  Misses go to the large model, whose response is inserted for
  future reuse.
* **RAG** — retrieved documents ride the context-view mechanism (latent /
  quality / tokens), so the simulator's ICL model gates their lift by
  relevance and headroom.  Table 2's dedicated inline benchmark keeps the
  specialized RAG boost model; this adapter is for end-to-end serving
  comparisons.
* **RouteLLM** — pure routing: no context, no learning, load-oblivious.
* **Naive cache** — IC-Cache with admission swapped for the Fig. 19
  random-retention policy (see ``RandomRetentionAdmission``).
"""

from __future__ import annotations

from repro.baselines.rag import LongRAGRetriever, build_document_store
from repro.baselines.routellm import RouteLLMRouter
from repro.baselines.semantic_cache import SemanticCache
from repro.core.config import ICCacheConfig
from repro.core.router import RoutingChoice, routing_features
from repro.core.selector import ScoredExample
from repro.embedding.embedder import LatentEmbedder
from repro.embedding.similarity import cosine_similarity
from repro.llm.icl import ExampleView
from repro.llm.zoo import get_model
from repro.pipeline.context import ServeContext
from repro.pipeline.core import ICCachePipeline
from repro.pipeline.middleware import FaultBypassMiddleware
from repro.pipeline.policies import (
    FixedModelRouting,
    NullAdmission,
    NullRetrieval,
    plain_choice,
)
from repro.pipeline.registry import create, register
from repro.utils.tokens import count_tokens


class ViewExample:
    """Adapter giving any :class:`ExampleView` the ``.view()`` surface of a
    cached :class:`Example`, so non-IC context (cached responses, RAG
    documents) flows through ``ScoredExample`` unchanged."""

    __slots__ = ("example_id", "_view")

    def __init__(self, example_id: str, view: ExampleView) -> None:
        self.example_id = example_id
        self._view = view

    def view(self) -> ExampleView:
        return self._view


# -- semantic caching ------------------------------------------------------

class SemanticCacheAdapter:
    """Retrieval + admission over a :class:`SemanticCache`.

    Retrieval probes the cache; a hit yields the cached pair as a single
    in-context example (relevance = embedding similarity, utility = the
    stored response quality).  Admission inserts every completed request's
    response for future reuse.  One object serves both stages so the
    token bookkeeping stays consistent.
    """

    def __init__(self, cache: SemanticCache) -> None:
        self.cache = cache
        self._tokens: dict[str, int] = {}   # request_id -> stored pair tokens

    def warm(self, request, embedding, quality: float, tokens: int) -> None:
        """Pre-populate from history (the offline warm-up of Fig. 14)."""
        self.cache.put(request, embedding, quality)
        self._tokens[request.request_id] = tokens

    def retrieve_batch(self, contexts: list[ServeContext]
                       ) -> list[list[ScoredExample]]:
        combos: list[list[ScoredExample]] = []
        for ctx in contexts:
            lookup = self.cache.lookup(ctx.request, ctx.embedding)
            if not lookup.hit:
                combos.append([])
                continue
            source, quality = self.cache.entry(lookup.source_request_id)
            view = ExampleView(
                latent=source.latent, quality=quality,
                tokens=self._tokens.get(lookup.source_request_id,
                                        source.prompt_tokens),
            )
            combos.append([ScoredExample(
                example=ViewExample(lookup.source_request_id, view),
                relevance=lookup.similarity,
                utility=quality,
            )])
        return combos

    def admit(self, ctx: ServeContext):
        if ctx.examples:
            # A hit was served by repurposing an existing entry; only
            # misses (fresh large-model responses) are inserted, so the
            # cache never ratchets down to small-model quality.
            return None
        self.cache.put(ctx.request, ctx.embedding, ctx.result.quality)
        # Token weight of the stored pair: use the simulated output length,
        # not count_tokens(result.text) — on the cluster path result.text
        # is a fabricated placeholder, far shorter than the response the
        # latency/cost model simulated.
        self._tokens.setdefault(
            ctx.request.request_id,
            ctx.request.prompt_tokens + ctx.result.output_tokens,
        )
        return None


class HitRouting:
    """Hits to the small model (repurposing the cached pair as context),
    misses to the large model — the serving form of Fig. 14's comparison."""

    def __init__(self, small_name: str, large_name: str) -> None:
        self.small_name = small_name
        self.large_name = large_name

    def route(self, ctx: ServeContext) -> RoutingChoice:
        name = self.small_name if ctx.examples else self.large_name
        return plain_choice(ctx, name)


# -- RAG -------------------------------------------------------------------

class RAGRetrieval:
    """Top-k document retrieval (LongRAG) as a RetrievalPolicy.

    Documents become context views (latent/quality/tokens); relevance is
    the latent cosine similarity the RAG boost model gates on.
    """

    def __init__(self, retriever: LongRAGRetriever) -> None:
        self.retriever = retriever

    def retrieve_batch(self, contexts: list[ServeContext]
                       ) -> list[list[ScoredExample]]:
        combos = []
        for ctx in contexts:
            docs = self.retriever.retrieve(ctx.request.latent)
            combos.append([
                ScoredExample(
                    example=ViewExample(doc.doc_id, ExampleView(
                        latent=doc.latent, quality=doc.quality,
                        tokens=doc.tokens,
                    )),
                    relevance=cosine_similarity(ctx.request.latent, doc.latent),
                    utility=doc.quality,
                )
                for doc in docs
            ])
        return combos


# -- RouteLLM --------------------------------------------------------------

class RouteLLMRouting:
    """RouteLLM's difficulty-threshold classifier as a RoutingPolicy.

    Load-oblivious and context-blind by construction (section 6.2): the
    classifier sees only the bare request.
    """

    def __init__(self, router: RouteLLMRouter) -> None:
        self.router = router

    def route(self, ctx: ServeContext) -> RoutingChoice:
        return RoutingChoice(
            model_name=self.router.route(ctx.request, ctx.load),
            features=routing_features(ctx.request, []),
            mean_scores={}, biased_scores={},
            solicit_feedback=False,
        )


@register("routing", "routellm")
def _routellm_routing(service, threshold: float = 0.5, **kwargs):
    """RouteLLM routing as a swappable component for an IC-backed pipeline."""
    return RouteLLMRouting(RouteLLMRouter(
        service.small_name, service.large_name,
        threshold=threshold, seed=service.config.seed,
    ))


# -- policy builders (full pipelines) --------------------------------------

def _resolve(config, models, seed):
    config = config or ICCacheConfig(seed=seed if seed is not None else 0)
    seed = config.seed if seed is None else seed
    if models is None:
        small = get_model(config.small_model, seed=seed)
        large = get_model(config.large_model, seed=seed)
        models = {small.name: small, large.name: large}
    return config, models, seed


def _bare_pipeline(config, models, retrieval, routing, admission):
    """A service-free pipeline: embedder + stages + the section-5 bypass."""
    pipeline = ICCachePipeline(
        embedder=LatentEmbedder(dim=config.embedding_dim,
                                noise_scale=config.embedder_noise),
        models=models,
        reference_model=config.large_model,
        retrieval=retrieval,
        routing=routing,
        admission=admission,
    )
    pipeline.middlewares.append(
        FaultBypassMiddleware(config.large_model, pipeline.stats))
    return pipeline


@register("policy", "ic-cache")
def build_ic_cache(config=None, models=None, dataset=None, history=None,
                   seed=None, **kwargs) -> ICCachePipeline:
    """The full IC-Cache system; ``history`` seeds the example bank."""
    from repro.core.service import ICCacheService
    config, models, seed = _resolve(config, models, seed)
    service = ICCacheService(config, models=models)
    if history:
        service.seed_cache(history)
    return service.pipeline


@register("policy", "naive-cache")
def build_naive_cache(config=None, models=None, dataset=None, history=None,
                      seed=None, fraction: float = 0.5,
                      **kwargs) -> ICCachePipeline:
    """IC-Cache with Fig. 19's random-retention admission policy."""
    from repro.core.service import ICCacheService
    config, models, seed = _resolve(config, models, seed)
    service = ICCacheService(config, models=models)
    service.pipeline.admission = create(
        "admission", "naive-random", service=service, fraction=fraction)
    if history:
        service.seed_cache(history)
    return service.pipeline


@register("policy", "semantic-cache")
def build_semantic_cache(config=None, models=None, dataset=None, history=None,
                         seed=None, similarity_threshold: float = 0.92,
                         **kwargs) -> ICCachePipeline:
    """GPTCache-style semantic caching, hits repurposed as IC examples."""
    config, models, seed = _resolve(config, models, seed)
    adapter = SemanticCacheAdapter(SemanticCache(
        dim=config.embedding_dim, similarity_threshold=similarity_threshold))
    pipeline = _bare_pipeline(
        config, models,
        retrieval=adapter,
        routing=HitRouting(config.small_model, config.large_model),
        admission=adapter,
    )
    for request in history or []:
        result = models[config.large_model].generate(request)
        embedding = pipeline.embedder.embed(request.text, request.latent)
        adapter.warm(request, embedding, result.quality,
                     request.prompt_tokens + count_tokens(result.text))
    return pipeline


@register("policy", "rag")
def build_rag(config=None, models=None, dataset=None, history=None,
              seed=None, docs_per_topic: int = 3, top_k: int = 5,
              **kwargs) -> ICCachePipeline:
    """LongRAG over a document corpus synthesized from the workload topics."""
    if dataset is None:
        raise ValueError("the 'rag' policy needs dataset= for its corpus topics")
    config, models, seed = _resolve(config, models, seed)
    documents, index = build_document_store(
        dataset.topics, docs_per_topic=docs_per_topic, seed=seed)
    return _bare_pipeline(
        config, models,
        retrieval=RAGRetrieval(LongRAGRetriever(documents, index, top_k=top_k)),
        routing=FixedModelRouting(config.small_model),
        admission=NullAdmission(),
    )


@register("policy", "routellm")
def build_routellm(config=None, models=None, dataset=None, history=None,
                   seed=None, threshold: float = 0.5,
                   **kwargs) -> ICCachePipeline:
    """RouteLLM: classifier routing, no context, no cache."""
    config, models, seed = _resolve(config, models, seed)
    return _bare_pipeline(
        config, models,
        retrieval=NullRetrieval(),
        routing=RouteLLMRouting(RouteLLMRouter(
            config.small_model, config.large_model,
            threshold=threshold, seed=seed)),
        admission=NullAdmission(),
    )
