"""The one serve loop: ``ICCachePipeline``.

Every way of serving a request in this repo — ``ICCacheService.serve``,
``serve_batch``, the cluster simulator's per-request and batched routers,
and all four baselines — executes this pipeline.  The flow is Algorithm 1
generalized to protocol-typed stages over a micro-batch (a single inline
request is a batch of one):

    embed -> retrieve (RetrievalPolicy, batch) -> route (RoutingPolicy,
    per request) -> generate -> after_complete middleware (learning) ->
    admit (AdmissionPolicy)

Middleware hooks run between stages (ordering in
:mod:`repro.pipeline.protocols`); stage failures funnel through
``on_failure`` — with :class:`~repro.pipeline.middleware.
FaultBypassMiddleware` installed, that is the section-5 bypass: a
retrieval failure bypasses the whole micro-batch, a routing failure just
that request.

Cluster serving splits the same flow around the simulator's event clock:
``cluster_router``/``cluster_batch_router`` run the decision half
(embed/retrieve/route) and park the context; ``on_complete`` finishes it
(learning + admission) when the simulated request completes, so online
learning sees real serving delay.
"""

from __future__ import annotations

from typing import Sequence

from repro.llm.model import GenerationResult, SimulatedLLM
from repro.pipeline.context import ServeContext
from repro.pipeline.protocols import (
    AdmissionPolicy,
    RetrievalPolicy,
    RoutingPolicy,
    ServeMiddleware,
)
from repro.pipeline.stats import ServiceStats
from repro.serving.records import ServedRequest
from repro.utils.clock import SimClock
from repro.workload.request import Request


class ICCachePipeline:
    """Protocol-typed serve loop over pluggable stage policies.

    ``reference_model`` plays two roles: it is the quality reference that
    defines "offloaded" (a request is offloaded when routed anywhere else),
    and in-context views are attached only for offloaded requests
    (Algorithm 1 prepends examples only on the small model).
    """

    def __init__(self, *, embedder, models: dict[str, SimulatedLLM],
                 reference_model: str,
                 retrieval: RetrievalPolicy,
                 routing: RoutingPolicy,
                 admission: AdmissionPolicy | None = None,
                 middlewares: Sequence[ServeMiddleware] = (),
                 stats: ServiceStats | None = None,
                 clock: SimClock | None = None) -> None:
        if reference_model not in models:
            raise ValueError(
                f"reference model {reference_model!r} missing from models: "
                f"{sorted(models)}"
            )
        self.embedder = embedder
        self.models = models
        self.reference_model = reference_model
        from repro.pipeline.policies import NullAdmission
        self.retrieval = retrieval
        self.routing = routing
        self.admission = admission if admission is not None else NullAdmission()
        self.middlewares: list[ServeMiddleware] = list(middlewares)
        self.stats = stats or ServiceStats()
        self.clock = clock
        # request_id -> decided context, resolved by on_complete.
        self._pending: dict[str, ServeContext] = {}
        # Optional back-reference set by ICCacheService so registry builders
        # and from_config callers can reach seed_cache & friends.
        self.service = None

    # -- inline serving ----------------------------------------------------

    def run_batch(self, requests: Sequence[Request],
                  load: float | None = None) -> list[ServeContext]:
        """Serve a micro-batch end-to-end; returns one context per request.

        Decisions for the whole batch complete before any generation (the
        micro-batch is decided simultaneously, as on the cluster path);
        generation, learning, and admission then run per request in arrival
        order.
        """
        contexts = self.decide_batch(requests, load)
        for ctx in contexts:
            self.complete(ctx, self.generate(ctx))
        return contexts

    # -- the decision half (embed -> retrieve -> route) --------------------

    def decide_batch(self, requests: Sequence[Request],
                     load: float | None = None) -> list[ServeContext]:
        """Run the decision stages; every returned context has a choice."""
        contexts = [ServeContext(request=r, load=load) for r in requests]
        if not contexts:
            return contexts
        for ctx in contexts:
            ctx.embedding = self.embedder.embed(ctx.request.text,
                                                ctx.request.latent)
        self._emit_batch("on_batch", contexts)

        # Retrieval: batch granularity; a failure fails the whole batch.
        try:
            self._emit_batch("before_retrieve", contexts)
            combos = self.retrieval.retrieve_batch(contexts)
            if len(combos) != len(contexts):
                raise RuntimeError(
                    f"retrieval returned {len(combos)} combinations "
                    f"for {len(contexts)} requests"
                )
            for ctx, examples in zip(contexts, combos):
                ctx.examples = list(examples)
                self._emit("after_retrieve", ctx)
        except Exception as exc:
            for ctx in contexts:
                self._fail(ctx, "retrieve", exc)

        # Routing: per-request granularity.
        for ctx in contexts:
            if ctx.failed_stage is not None:
                continue
            try:
                self._emit("before_route", ctx)
                ctx.choice = self.routing.route(ctx)
                self._emit("after_route", ctx)
            except Exception as exc:
                self._fail(ctx, "route", exc)

        for ctx in contexts:
            offloaded = ctx.choice.model_name != self.reference_model
            ctx.choice.metadata["offloaded"] = offloaded
            # Views are prepended only when offloading (Algorithm 1); the
            # context still carries the selected examples so learning can
            # reason about the counterfactual.
            ctx.views = [s.example.view() for s in ctx.examples] \
                if offloaded else []
        return contexts

    # -- the completion half (generate -> learn -> admit) ------------------

    def generate(self, ctx: ServeContext) -> GenerationResult:
        """Generate inline with the chosen model (non-cluster paths)."""
        return self.models[ctx.choice.model_name].generate(ctx.request,
                                                           ctx.views)

    def complete(self, ctx: ServeContext,
                 result: GenerationResult) -> ServeContext:
        """Attach the result, run learning middleware, admit, record stats."""
        ctx.result = result
        self._emit("after_complete", ctx)
        ctx.admitted_example = self.admission.admit(ctx)
        self.stats.served += 1
        if ctx.offloaded:
            self.stats.offloaded += 1
        self.stats.record_quality(result.quality)
        return ctx

    # -- cluster-simulator adapters ----------------------------------------

    def cluster_router(self):
        """A per-request RouterFn for :class:`ClusterSimulator`."""

        def route(request: Request, sim):
            ctx = self.decide_batch([request], sim.total_load())[0]
            return self._defer(ctx)

        return route

    def cluster_batch_router(self):
        """A batch RouterFn for :class:`BatchedRetrievalEngine`.

        The cluster load is sampled once per micro-batch: the simulator
        enqueues nothing until the whole batch is routed, so per-request
        sampling would read the same stale value anyway — micro-batching
        coarsens the router's load signal to batch granularity.
        """

        def route_batch(requests: Sequence[Request], sim):
            contexts = self.decide_batch(requests, sim.total_load())
            return [self._defer(ctx) for ctx in contexts]

        return route_batch

    def _defer(self, ctx: ServeContext) -> tuple[str, list]:
        """Park a decided context and shape it for the simulator."""
        self._pending[ctx.request.request_id] = ctx
        return ctx.choice.model_name, ctx.views

    def on_complete(self, request: Request, record: ServedRequest) -> None:
        """Completion callback for the cluster simulator: learn + admit."""
        ctx = self._pending.pop(request.request_id, None)
        if ctx is None:
            return
        if self.clock is not None:
            self.clock.advance_to(record.finish_s)
        result = GenerationResult(
            model_name=record.model_name,
            quality=record.quality,
            prompt_tokens=record.prompt_tokens,
            output_tokens=record.output_tokens,
            ttft_s=record.ttft_s,
            decode_s=record.finish_s - record.start_s - record.ttft_s,
            icl_boost=0.0,
            n_examples=record.n_examples,
            cost=record.cost,
            text=f"[{record.model_name}] response to {request.request_id}: "
                 + request.text[:120],
        )
        self.complete(ctx, result)

    # -- online maintenance ------------------------------------------------

    def run_maintenance(self, service=None) -> None:
        """Emit the ``on_maintenance`` middleware hook in registration order.

        Called by ``ICCacheService.run_maintenance`` after a cache
        maintenance pass (decay / eviction / replay) so middleware observes
        lifecycle events through the same ordered chain as request hooks.
        """
        who = service if service is not None else self.service
        for mw in self.middlewares:
            mw.on_maintenance(who)

    def run_checkpoint(self, service=None) -> None:
        """Emit the ``on_checkpoint`` middleware hook in registration order.

        Called by ``ICCacheService.save`` after a snapshot is written —
        the durable-state counterpart of :meth:`run_maintenance`.
        Cadence-driven checkpoints (explicit ``save`` calls, the runtime's
        checkpoint tick) land *between* completed requests, never inside
        one request's hook sequence; a WAL *size-triggered* compaction can
        additionally fire from an admission mid-request, in which case the
        in-progress request counts as in-flight for that snapshot (see
        ``docs/PERSISTENCE.md``).
        """
        who = service if service is not None else self.service
        for mw in self.middlewares:
            mw.on_checkpoint(who)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_config(cls, config=None, *, models=None, clock=None,
                    retrieval=None, routing=None, admission=None,
                    extra_middleware: Sequence[ServeMiddleware] = (),
                    learning: bool = True, **component_kwargs
                    ) -> "ICCachePipeline":
        """Build an IC-Cache pipeline from config, with registry swaps.

        ``retrieval``/``routing``/``admission`` accept a registry key (str)
        or a ready policy instance; ``None`` keeps the IC-Cache default.
        ``learning=False`` strips the service's feedback loops (for
        stateless baselines built on IC components).  The returned
        pipeline's ``.service`` is the backing :class:`ICCacheService`
        (e.g. for ``pipeline.service.seed_cache(...)``).
        """
        from repro.core.service import ICCacheService
        from repro.pipeline.middleware import LearningHook
        from repro.pipeline.registry import create

        service = ICCacheService(config, models=models, clock=clock)
        pipeline = service.pipeline
        if not learning:
            pipeline.middlewares = [m for m in pipeline.middlewares
                                    if not isinstance(m, LearningHook)]
        for kind, spec in (("retrieval", retrieval), ("routing", routing),
                           ("admission", admission)):
            if spec is None:
                continue
            if isinstance(spec, str):
                spec = create(kind, spec, service=service, **component_kwargs)
            setattr(pipeline, kind, spec)
        pipeline.middlewares.extend(extra_middleware)
        return pipeline

    # -- internals ---------------------------------------------------------

    def _emit(self, hook: str, ctx: ServeContext) -> None:
        for mw in self.middlewares:
            getattr(mw, hook)(ctx)

    def _emit_batch(self, hook: str, contexts: list[ServeContext]) -> None:
        for mw in self.middlewares:
            getattr(mw, hook)(contexts)

    def _fail(self, ctx: ServeContext, stage: str, exc: Exception) -> None:
        ctx.failed_stage = stage
        ctx.error = exc
        for mw in self.middlewares:
            if mw.on_failure(ctx, stage, exc):
                return
        raise exc
