"""The pluggable serving-policy pipeline.

One serve loop for every policy: typed stage protocols
(:class:`RetrievalPolicy`, :class:`RoutingPolicy`,
:class:`AdmissionPolicy`), middleware hooks (:class:`ServeMiddleware`),
a string-keyed component/policy registry, and the
:class:`ICCachePipeline` executor that ``ICCacheService``, the cluster
simulator, and all four baselines run on.

Quickstart — any registered policy drops into the cluster simulator::

    from repro.pipeline import registry

    pipeline = registry.build_policy("semantic-cache", dataset=dataset,
                                     history=history)
    report = sim.run(arrivals, pipeline.cluster_router(),
                     on_complete=pipeline.on_complete)
"""

# Import order matters: stats first (stdlib-only; the one module
# repro.core.service imports at module level), then the rest.
from repro.pipeline.stats import ServiceStats
from repro.pipeline.context import ServeContext
from repro.pipeline.protocols import (
    AdmissionPolicy,
    RetrievalPolicy,
    RoutingPolicy,
    ServeMiddleware,
)
from repro.pipeline.core import ICCachePipeline
from repro.pipeline.middleware import (
    FaultBypassMiddleware,
    FaultInjectionMiddleware,
    LearningHook,
)
from repro.pipeline.policies import (
    FixedModelRouting,
    ICAdmission,
    ICRetrieval,
    ICRouting,
    NullAdmission,
    NullRetrieval,
    RandomRetentionAdmission,
)
from repro.pipeline import baselines  # registers the baseline policies
from repro.pipeline import registry

__all__ = [
    "ServiceStats",
    "ServeContext",
    "RetrievalPolicy",
    "RoutingPolicy",
    "AdmissionPolicy",
    "ServeMiddleware",
    "ICCachePipeline",
    "FaultBypassMiddleware",
    "FaultInjectionMiddleware",
    "LearningHook",
    "ICRetrieval",
    "ICRouting",
    "ICAdmission",
    "NullRetrieval",
    "FixedModelRouting",
    "NullAdmission",
    "RandomRetentionAdmission",
    "baselines",
    "registry",
]
