"""String-keyed registry of pipeline components and full serving policies.

Two granularities:

* **Components** — ``retrieval`` / ``routing`` / ``admission`` /
  ``middleware`` builders, swapped into an IC-Cache pipeline one stage at a
  time (``ICCachePipeline.from_config(routing="routellm")``).  Component
  builders receive the backing ``service=`` keyword so they can reuse its
  selector, router, manager, and config.
* **Policies** — ``policy`` builders that assemble a complete, ready-to-run
  :class:`~repro.pipeline.core.ICCachePipeline` for one serving system
  (``ic-cache``, ``semantic-cache``, ``rag``, ``routellm``,
  ``naive-cache``).  This is how the figure benchmarks and the
  registry-sweep test construct every system they compare.

Importing :mod:`repro.pipeline` populates the registry with the built-in
entries; user code adds its own with the same decorator::

    from repro.pipeline import registry

    @registry.register("routing", "always-small")
    def _build(service, **kwargs):
        return FixedModelRouting(service.small_name)
"""

from __future__ import annotations

from typing import Callable

KINDS = ("retrieval", "routing", "admission", "middleware", "policy")

_REGISTRY: dict[str, dict[str, Callable]] = {kind: {} for kind in KINDS}


def register(kind: str, name: str) -> Callable[[Callable], Callable]:
    """Decorator: register ``fn`` as the builder for ``(kind, name)``."""
    _check_kind(kind)
    if not name or not isinstance(name, str):
        raise ValueError(f"component name must be a non-empty string: {name!r}")

    def decorator(fn: Callable) -> Callable:
        existing = _REGISTRY[kind].get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"{kind} component {name!r} already registered")
        _REGISTRY[kind][name] = fn
        return fn

    return decorator


def create(kind: str, name: str, **kwargs):
    """Instantiate the registered builder for ``(kind, name)``."""
    _check_kind(kind)
    try:
        builder = _REGISTRY[kind][name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY[kind])) or "<none>"
        raise KeyError(
            f"no {kind} component named {name!r}; registered: {known}"
        ) from None
    return builder(**kwargs)


def build_policy(name: str, **kwargs):
    """Assemble a complete serving pipeline for the named policy.

    All builders accept ``config=`` (an :class:`ICCacheConfig`), ``models=``
    (name -> SimulatedLLM, built from the config's model zoo entries when
    omitted), ``dataset=`` (a :class:`SyntheticDataset`, used for e.g. the
    RAG document corpus), and ``history=`` (requests to warm caches from);
    policy-specific knobs ride along as extra keywords.
    """
    return create("policy", name, **kwargs)


def available(kind: str | None = None) -> list[str]:
    """Registered names for one kind (or all kinds when ``kind`` is None)."""
    if kind is None:
        return sorted({name for names in _REGISTRY.values() for name in names})
    _check_kind(kind)
    return sorted(_REGISTRY[kind])


def _check_kind(kind: str) -> None:
    if kind not in _REGISTRY:
        raise ValueError(f"unknown component kind {kind!r}; kinds: {KINDS}")
