"""``ServeContext``: the one object threaded through every pipeline stage.

Each request flowing through :class:`repro.pipeline.core.ICCachePipeline`
owns exactly one context.  Stages fill it in order — embedding, retrieved
examples, routing choice, prompt views, generation result, admission — and
middleware hooks observe (or mutate) it between stages.  The section-5
fault-tolerance state (``bypassed``, ``failed_stage``, ``error``) also
lives here, so a failure in any stage is visible to every later one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.example import Example
from repro.core.router import RoutingChoice
from repro.core.selector import ScoredExample
from repro.llm.icl import ExampleView
from repro.llm.model import GenerationResult
from repro.workload.request import Request


@dataclass
class ServeContext:
    """Per-request state shared by all pipeline stages and middleware.

    Lifecycle (filled top to bottom):

    * ``request`` / ``load`` — set at batch entry;
    * ``embedding`` — after the embed stage;
    * ``examples`` — after the retrieval stage (``RetrievalPolicy``);
    * ``choice`` / ``views`` — after the routing stage (``RoutingPolicy``;
      views are non-empty only when the request was offloaded);
    * ``result`` — after generation (inline) or cluster completion;
    * ``admitted_example`` — after admission (``AdmissionPolicy``).

    ``metadata`` is a free-form scratchpad for middleware and policies;
    the pipeline core never reads it.
    """

    request: Request
    load: float | None = None
    embedding: np.ndarray | None = None
    examples: list[ScoredExample] = field(default_factory=list)
    choice: RoutingChoice | None = None
    views: list[ExampleView] = field(default_factory=list)
    result: GenerationResult | None = None
    admitted_example: Example | None = None
    bypassed: bool = False
    failed_stage: str | None = None
    error: Exception | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def offloaded(self) -> bool:
        """True when routing diverted the request off the reference model."""
        return bool(self.choice is not None
                    and self.choice.metadata.get("offloaded", False))

    @property
    def tenant(self) -> str:
        """The tenant this request bills to (``"default"`` when unstated).

        The serving gateway stamps ``request.metadata["tenant"]`` at
        admission (per-tenant rate limits key on it); threading it through
        the context lets middleware and policies aggregate per tenant
        without re-deriving the convention.
        """
        return str(self.request.metadata.get("tenant", "default"))
