"""Serving statistics shared by every pipeline-driven policy.

``ServiceStats`` predates the pipeline (it was defined next to
``ICCacheService``) and is re-exported from :mod:`repro.core.service` for
old call sites.  It lives here so the pipeline — which updates it — has no
import-time dependency on the service layer.

This module must stay import-light (stdlib only): it is the one pipeline
module :mod:`repro.core.service` imports at module level, and anything
heavier would recreate the core <-> pipeline import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServiceStats:
    """Running counters the benchmarks read.

    ``offload_ratio`` is the headline quantity of the paper's end-to-end
    evaluation (section 7.1, Fig. 12): the fraction of traffic IC-Cache
    diverts from the large reference model to the cheap model.

    Quality is tracked as a running mean (``mean_quality``) rather than a
    per-request list, so a long-lived service holds O(1) stats state no
    matter how many requests it serves.
    """

    served: int = 0
    offloaded: int = 0
    bypasses: int = 0
    router_updates: int = 0
    proxy_updates: int = 0
    quality_sum: float = 0.0
    quality_count: int = 0

    @property
    def offload_ratio(self) -> float:
        return self.offloaded / self.served if self.served else 0.0

    @property
    def mean_quality(self) -> float:
        """Mean response quality over every recorded request (0.0 if none)."""
        return self.quality_sum / self.quality_count if self.quality_count else 0.0

    def record_quality(self, quality: float) -> None:
        self.quality_sum += quality
        self.quality_count += 1
