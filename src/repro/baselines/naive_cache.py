"""Naive cache-retention baseline (Fig. 19): keep a random subset.

The paper's cache-size ablation compares IC-Cache's utility-aware retention
(knapsack over decayed offload gains, section 4.3) against randomly retaining
the same fraction of examples.
"""

from __future__ import annotations

from repro.core.example import Example
from repro.utils.rng import make_rng, stable_hash


class NaiveCachePolicy:
    """Uniform-random retention at a target fraction."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = make_rng(stable_hash("naive-cache", seed))

    def retain(self, examples: list[Example], fraction: float) -> list[Example]:
        """A random ``fraction`` of ``examples`` (at least one if non-empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not examples or fraction == 0.0:
            return []
        n_keep = max(1, int(round(len(examples) * fraction)))
        indices = self._rng.choice(len(examples), size=n_keep, replace=False)
        return [examples[i] for i in sorted(indices)]
