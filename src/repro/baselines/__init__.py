"""The baselines of section 6.1 and the comparison systems of section 6.4.

* :class:`RouteLLMRouter` — RouteLLM: a binary difficulty classifier that
  picks small vs large per request, oblivious to serving load.
* :class:`SemanticCache` — GPTCache/Databricks-style semantic caching:
  return the cached response verbatim when a sufficiently similar request
  was seen before.
* :class:`LongRAGRetriever` — LongRAG: retrieve top-k external documents and
  append them to the prompt.
* :class:`SFTModel` — supervised fine-tuning of the small model on large-model
  outputs: capability boost in-domain, regression out-of-domain (Table 3).
* :class:`NaiveCachePolicy` — random example retention, the Fig. 19 baseline.
"""

from repro.baselines.routellm import RouteLLMRouter
from repro.baselines.semantic_cache import CacheLookup, SemanticCache
from repro.baselines.rag import Document, LongRAGRetriever, build_document_store
from repro.baselines.sft import SFTModel
from repro.baselines.naive_cache import NaiveCachePolicy

__all__ = [
    "RouteLLMRouter",
    "CacheLookup",
    "SemanticCache",
    "Document",
    "LongRAGRetriever",
    "build_document_store",
    "SFTModel",
    "NaiveCachePolicy",
]
