"""RouteLLM baseline (Ong et al.): classifier-based model routing.

RouteLLM trains a binary classifier on preference data to predict whether
the small model suffices for a request, then thresholds that score.  Two
properties distinguish it from IC-Cache's router (section 6.2):

* it is *load-oblivious* — the threshold never reacts to serving load;
* it judges the bare request — it knows nothing about in-context examples,
  so it cannot anticipate augmentation lifting the small model.

The reproduction models the trained classifier as a logistic score over the
request's observable difficulty, fit offline on labeled comparisons (the
same data a real RouteLLM deployment would use).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng, stable_hash
from repro.workload.request import Request


class RouteLLMRouter:
    """Difficulty-threshold binary router."""

    def __init__(self, small_model: str, large_model: str,
                 threshold: float = 0.5, classifier_noise: float = 0.05,
                 seed: int = 0) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.small_model = small_model
        self.large_model = large_model
        self.threshold = threshold
        self.classifier_noise = classifier_noise
        self._rng = make_rng(stable_hash("routellm", seed))

    def win_probability(self, request: Request) -> float:
        """Classifier score: P(small model suffices) for this request.

        Logistic in the request's estimated difficulty, with classifier error
        modeled as noise — real classifiers are imperfect too.
        """
        difficulty = request.observable_difficulty()
        score = 1.0 / (1.0 + np.exp(6.0 * (difficulty - 0.5)))
        if self.classifier_noise > 0:
            score += self._rng.normal(0.0, self.classifier_noise)
        return float(np.clip(score, 0.0, 1.0))

    def route(self, request: Request, load: float | None = None) -> str:
        """Pick a model.  ``load`` is accepted and ignored (load-oblivious)."""
        if self.win_probability(request) >= self.threshold:
            return self.small_model
        return self.large_model
