"""LongRAG baseline (section 6.1, Table 2): retrieval-augmented generation.

RAG retrieves *documents* — factual text chunks — rather than historical
request-response pairs.  Documents supply factual grounding (a quality lift
that grows with relevance) but, unlike IC examples, they do not demonstrate
response composition, so the lift is smaller than knowledge transfer from a
stronger model and plateaus lower (the paper's Table 2: RAG +0.43 avg score
vs IC +0.49, combined +0.72).  Documents can also distract when off-topic,
just like random examples.

The document store is synthesized from the same topic model as the workload,
mimicking an external corpus covering the request domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.similarity import cosine_similarity
from repro.utils.rng import make_rng, spawn_rng, stable_hash
from repro.vectorstore.flat import FlatIndex
from repro.workload.topics import TopicModel

# RAG quality model constants.
RAG_MAX_BOOST = 0.12        # factual grounding ceiling (< ICL's transfer)
RAG_SATURATION = 1.2        # documents saturate quickly
RAG_REL_GATE = 0.45         # minimum relevance for a document to help
RAG_DISTRACTION = 0.02      # per irrelevant document


@dataclass(frozen=True)
class Document:
    """One external document chunk."""

    doc_id: str
    topic_id: int
    latent: np.ndarray
    tokens: int
    quality: float   # how authoritative/clean the document is, in [0, 1]


def build_document_store(topics: TopicModel, docs_per_topic: int = 3,
                         seed: int = 0) -> tuple[list[Document], FlatIndex]:
    """Synthesize a document corpus over the workload's topics."""
    if docs_per_topic < 1:
        raise ValueError(f"docs_per_topic must be >= 1: {docs_per_topic}")
    rng = make_rng(stable_hash("rag-docs", seed))
    documents = []
    index = FlatIndex(topics.dim)
    for topic_id in range(topics.n_topics):
        for j in range(docs_per_topic):
            doc_rng = spawn_rng(rng, topic_id, j)
            latent = topics.sample_latent(topic_id, doc_rng)
            doc = Document(
                doc_id=f"doc-{topic_id}-{j}",
                topic_id=topic_id,
                latent=latent,
                tokens=int(doc_rng.integers(120, 600)),
                quality=float(doc_rng.uniform(0.5, 0.95)),
            )
            documents.append(doc)
            index.add(doc.doc_id, latent)
    return documents, index


class LongRAGRetriever:
    """Top-k document retrieval plus the RAG quality-boost model."""

    def __init__(self, documents: list[Document], index: FlatIndex,
                 top_k: int = 5) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1: {top_k}")
        self._documents = {d.doc_id: d for d in documents}
        self._index = index
        self.top_k = top_k

    def retrieve(self, request_latent: np.ndarray) -> list[Document]:
        hits = self._index.search(request_latent, self.top_k)
        return [self._documents[h.key] for h in hits]

    def boost(self, request_latent: np.ndarray,
              documents: list[Document]) -> float:
        """Quality delta from appending the retrieved documents."""
        if not documents:
            return 0.0
        grounding = 0.0
        distraction = 0.0
        for doc in documents:
            relevance = cosine_similarity(request_latent, doc.latent)
            if relevance < RAG_REL_GATE:
                distraction += RAG_DISTRACTION
            else:
                grounding += (relevance - RAG_REL_GATE) * doc.quality
        gain = RAG_MAX_BOOST * (1.0 - np.exp(-grounding / RAG_SATURATION))
        return float(gain - distraction)

    def prompt_tokens(self, documents: list[Document]) -> int:
        """Extra prompt length from the appended documents."""
        return sum(d.tokens for d in documents)
