"""Semantic caching baseline (GPTCache / Databricks, sections 2.3 and 6.2).

On a hit (embedding similarity above a threshold), the cached response is
returned verbatim — zero generation cost, but the response answers the *old*
request.  The returned quality therefore degrades with the semantic distance
between the two requests: a near-exact match keeps most of the quality, a
merely-similar match risks an off-topic reply.  This is the mechanism behind
Fig. 3(b)'s win-rate collapse at high hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.similarity import cosine_similarity
from repro.vectorstore.flat import FlatIndex
from repro.workload.request import Request

# How fast reused-response quality falls off with request dissimilarity.
# At similarity 1.0 the full quality is preserved; at the within-topic
# similarity of ~0.93 only ~60% survives, so high-hit-rate configurations
# collapse toward the paper's ~18% win rate for naive semantic caching.
MISMATCH_SEVERITY = 7.0


def reused_quality(original_quality: float, similarity: float) -> float:
    """Quality of serving a cached response to a *different* request."""
    if not 0.0 <= original_quality <= 1.0:
        raise ValueError(f"original_quality out of [0, 1]: {original_quality}")
    sim = float(np.clip(similarity, 0.0, 1.0))
    retention = float(np.exp(-MISMATCH_SEVERITY * (1.0 - sim)))
    return original_quality * retention


@dataclass
class CacheLookup:
    """Result of a semantic-cache probe."""

    hit: bool
    similarity: float = 0.0
    response_quality: float = 0.0
    source_request_id: str | None = None


class SemanticCache:
    """Embedding-similarity response cache."""

    def __init__(self, dim: int, similarity_threshold: float = 0.92) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold out of [0, 1]: {similarity_threshold}"
            )
        self.similarity_threshold = similarity_threshold
        self._index = FlatIndex(dim)
        self._entries: dict[str, tuple[Request, float]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def put(self, request: Request, embedding: np.ndarray,
            response_quality: float) -> None:
        """Cache a served request's response (keyed by request id)."""
        if request.request_id in self._entries:
            return
        self._entries[request.request_id] = (request, response_quality)
        self._index.add(request.request_id, embedding)

    def entry(self, request_id: str) -> tuple[Request, float]:
        """The stored (request, response quality) pair for a cached id.

        This is how the pipeline adapter repurposes a hit as an in-context
        example (Fig. 14's "Semantic w/ IC") instead of returning the
        cached response verbatim.
        """
        try:
            return self._entries[request_id]
        except KeyError:
            raise KeyError(f"request {request_id!r} not in cache") from None

    def lookup(self, request: Request, embedding: np.ndarray) -> CacheLookup:
        """Probe the cache; a hit returns the reused response's quality."""
        results = self._index.search(embedding, 1)
        if not results or results[0].score < self.similarity_threshold:
            self.misses += 1
            return CacheLookup(hit=False)
        best = results[0]
        cached_request, cached_quality = self._entries[best.key]
        # Quality degrades both with embedding distance and with the latent
        # semantic distance (embeddings are a noisy view of the latter).
        latent_sim = cosine_similarity(request.latent, cached_request.latent)
        self.hits += 1
        return CacheLookup(
            hit=True,
            similarity=best.score,
            response_quality=reused_quality(cached_quality, latent_sim),
            source_request_id=best.key,
        )
