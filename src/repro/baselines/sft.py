"""Supervised fine-tuning baseline (section 6.4, Table 3).

SFT distills the large model's outputs into the small model's weights.  The
paper's Table 3 shows the two signature effects the reproduction models:

* **in-domain**: a genuine capability lift (Gemma-2B +SFT improves on
  Natural Questions), though smaller than IC-Cache's;
* **out-of-domain**: catastrophic-forgetting-style regression (on Alpaca the
  SFT model scores *worse* than the base model, -0.59 vs -0.19), because the
  weights moved toward the fine-tuning distribution.

``SFTModel`` wraps a base :class:`SimulatedLLM` and shifts its effective
quality per request according to the request's dataset.
"""

from __future__ import annotations

import numpy as np

from repro.llm.model import GenerationResult, SimulatedLLM
from repro.workload.request import Request

IN_DOMAIN_LIFT = 0.06        # quality gain on the fine-tuning distribution
OUT_OF_DOMAIN_PENALTY = 0.10 # regression everywhere else


class SFTModel:
    """A small model fine-tuned on large-model outputs for one dataset."""

    def __init__(self, base: SimulatedLLM, tuned_dataset: str,
                 in_domain_lift: float = IN_DOMAIN_LIFT,
                 out_of_domain_penalty: float = OUT_OF_DOMAIN_PENALTY) -> None:
        if in_domain_lift < 0 or out_of_domain_penalty < 0:
            raise ValueError("lift and penalty must be non-negative")
        self.base = base
        self.tuned_dataset = tuned_dataset
        self.in_domain_lift = in_domain_lift
        self.out_of_domain_penalty = out_of_domain_penalty

    @property
    def name(self) -> str:
        return f"{self.base.name}+sft[{self.tuned_dataset}]"

    @property
    def spec(self):
        return self.base.spec

    def _shift(self, request: Request) -> float:
        if request.dataset == self.tuned_dataset:
            return self.in_domain_lift
        return -self.out_of_domain_penalty

    def base_quality(self, request: Request) -> float:
        return float(np.clip(
            self.base.base_quality(request) + self._shift(request), 0.0, 1.0
        ))

    def generate(self, request: Request, examples=None) -> GenerationResult:
        """Generate with the fine-tuned weights (examples still allowed).

        The quality shift applies to the base; the ICL boost on top is
        computed against the shifted base, so SFT + IC compose the way
        Fig. 15 reports.
        """
        examples = examples or []
        shift = self._shift(request)
        base = self.base_quality(request)
        boost = self.base.icl_model.boost(request.latent, examples, base)
        result = self.base.generate(request, examples)
        result.model_name = self.name
        result.icl_boost = boost
        result.quality = float(np.clip(result.quality + shift, 0.0, 1.0))
        return result
