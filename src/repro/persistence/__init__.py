"""Durable state: snapshots, the write-ahead journal, and warm restarts.

A process restart used to lose the entire example cache, index layout, and
learned service state — a non-starter for the ROADMAP's production north
star.  This package makes the service durable with the classic database
recipe, specialized to IC-Cache's determinism contract:

* :mod:`repro.persistence.snapshot` — a versioned full-state snapshot:
  examples, index layout (including the add/remove history the K-Means
  retrain depends on), learned posteriors, and every RNG stream position,
  so a restored service serves *bit-identically* to one that never stopped.
* :mod:`repro.persistence.wal` — a write-ahead journal of cache mutations
  (add / overwrite / remove / replay-rewrite / decay) between snapshots,
  with replay-on-recovery and size-triggered compaction into a fresh
  snapshot (:class:`Checkpointer`).
* :mod:`repro.persistence.cli` — ``python -m repro.persistence.cli
  snapshot|restore|inspect`` for operators.

``docs/PERSISTENCE.md`` documents the format, the record vocabulary, and
the recovery semantics; ``tests/test_persistence_recovery.py`` pins the
headline guarantee (crash mid-workload, rebuild from snapshot+WAL, finish
the stream bit-identically).
"""

from repro.persistence.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_snapshot,
    restore_service,
    write_snapshot,
)
from repro.persistence.wal import (
    Checkpointer,
    WriteAheadLog,
    apply_wal,
    filter_stale_records,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "write_snapshot",
    "load_snapshot",
    "restore_service",
    "WriteAheadLog",
    "Checkpointer",
    "apply_wal",
    "filter_stale_records",
]
