"""Write-ahead journal for cache mutations between snapshots.

The snapshot (:mod:`repro.persistence.snapshot`) is a full-state image; the
WAL covers the tail since the last one.  It journals the cache *lifecycle*
(the section-4.3 surface): ``add`` / ``overwrite`` / ``remove`` mutations,
``replay_rewrite`` refinements, ``decay`` passes, ``clock`` marks and
``manager_counters`` updates from the manager, and ``retrain`` markers when
a search triggered a lazy K-Means (re)train.  Records are physical redo
records — they carry the resulting state, not the inputs — so recovery
replays them deterministically without re-running any stochastic
computation.

Recovery contract (pinned by ``tests/test_persistence_recovery.py``): a
service rebuilt from snapshot + WAL is bit-identical to the original at the
moment of the crash **when the WAL window contains only cache-lifecycle
operations** — maintenance ticks (decay / eviction / replay) and direct
cache ingestion (``cache.add`` / ``overwrite`` / ``remove``).  Operations
that *generate responses* move state the cache journal cannot see: served
requests touch router posteriors, proxy weights, and RNG positions, and
response-generating admission (``seed_cache`` / ``manager.admit``) advances
the source model's decode streams (its counters and minted ids ARE
journaled via ``manager_counters``, but the decode positions are not) — so
those windows must be bounded by checkpoints, which is what
:class:`Checkpointer`'s size-triggered compaction and the runtime's
:class:`~repro.runtime.sources.CheckpointTickSource` are for.  In-flight
requests at the crash are lost (standard serving-system semantics).

Layout on disk: one JSON object per line (``wal.jsonl``), each with a
monotonic ``seq``, the record ``kind``, and its data; arrays use the same
bit-exact base64 encoding as snapshots.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

from repro.persistence.snapshot import (
    _decode,
    _encode,
    example_from_record,
    example_record,
    load_snapshot,
    restore_ema,
    restore_service,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> persistence)
    from repro.core.config import ICCacheConfig
    from repro.core.service import ICCacheService


class WriteAheadLog:
    """Append-only journal of cache mutation records.

    Low-level: callers attach its :meth:`record` as ``cache.journal`` (or
    go through :class:`Checkpointer`, which also owns compaction).  One
    append handle stays open across records; each append is flushed to
    the OS before returning, so by the time a mutation's effects can be
    observed, its record survives a *process* crash (power-loss
    durability would additionally need an fsync per record — out of
    scope for the simulation substrate, and noted in
    ``docs/PERSISTENCE.md``).

    ``epoch`` stamps every record with the journal generation it belongs
    to (bumped by :meth:`reset`); recovery uses it to ignore records a
    crash stranded from before the newest snapshot.
    """

    def __init__(self, path: str | Path, epoch: int = 0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.epoch = int(epoch)
        self._fh = None   # persistent append handle, opened lazily
        # Resuming over an existing journal only needs the record *count*
        # for seq continuity; full decode (and validation) is deferred to
        # :meth:`read`, so reopening a large journal is cheap.  A file not
        # ending in a newline carries a torn tail from a mid-append crash
        # (record payloads never contain raw newlines): drop the fragment
        # now, or the next append would concatenate onto it and corrupt
        # an otherwise-recoverable record.
        self._seq = 0
        self._bytes = 0
        if self.path.exists():
            raw = self.path.read_bytes()
            if raw and not raw.endswith(b"\n"):
                raw = raw[:raw.rfind(b"\n") + 1] if b"\n" in raw else b""
                self.path.write_bytes(raw)
            self._seq = raw.count(b"\n")
            self._bytes = len(raw)

    def __len__(self) -> int:
        return self._seq

    @property
    def size_bytes(self) -> int:
        """Current journal size (drives size-triggered compaction).

        A running in-process counter — this log owns the only write
        handle, so counting bytes as they are written avoids a ``stat``
        syscall per journaled mutation on the admission/eviction path.
        """
        return self._bytes

    def record(self, kind: str, payload) -> None:
        """Serialize and append one mutation record (the journal callback)."""
        if kind in ("add", "overwrite"):
            data = {"example": example_record(payload)}
        elif kind == "remove":
            data = {"example_id": payload}
        elif kind == "replay_rewrite":
            data = {
                "example": example_record(payload["example"]),
                "teacher_decode_counts": dict(payload["teacher_decode_counts"]),
            }
        elif kind in ("retrain", "decay", "clock", "manager_counters"):
            data = dict(payload)
        else:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        line = json.dumps(_encode({"seq": self._seq, "epoch": self.epoch,
                                   "kind": kind, "data": data}),
                          separators=(",", ":"))
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        self._seq += 1
        self._bytes += len(line.encode("utf-8")) + 1

    def reset(self, epoch: int | None = None) -> None:
        """Truncate the journal (called right after a fresh snapshot).

        ``epoch`` advances the generation stamp for subsequent records so
        they pair with the snapshot that triggered the truncation.
        """
        self.close()
        self.path.write_text("", encoding="utf-8")
        self._seq = 0
        self._bytes = 0
        if epoch is not None:
            self.epoch = int(epoch)

    def close(self) -> None:
        """Release the append handle (reopened lazily on the next record)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Decode every record in seq order; validates contiguity.

        Standard torn-tail semantics: a final line that fails to parse is
        the fragment of an append interrupted by a crash and is dropped
        (the snapshot plus the valid prefix recover correctly); an
        unparsable line anywhere *else* is real corruption and raises.
        """
        path = Path(path)
        if not path.exists():
            return []
        lines = [line for line in
                 path.read_text(encoding="utf-8").splitlines()
                 if line.strip()]
        records = []
        for position, line in enumerate(lines):
            try:
                records.append(_decode(json.loads(line)))
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    break   # torn tail: mid-append crash, drop it
                raise ValueError(
                    f"{path}: unparsable record at line {position} "
                    "(journal corrupt)"
                ) from None
        for position, record in enumerate(records):
            if record["seq"] != position:
                raise ValueError(
                    f"{path}: record {position} has seq {record['seq']} "
                    "(journal corrupt or truncated mid-record)"
                )
        return records


def filter_stale_records(records: list[dict], snapshot: dict,
                         source: str = "WAL") -> list[dict]:
    """Drop records an earlier epoch already folded into ``snapshot``.

    Records whose epoch predates the snapshot's ``wal_epoch`` were
    stranded by a crash between snapshot write and journal truncation —
    their effects are inside the snapshot, and replaying them would
    double-apply.  Records from a *future* epoch mean mismatched files
    and raise.  Also warns when the surviving tail contains
    response-generating admissions (``manager_counters`` advancing past
    the snapshot's), because such windows are outside the bit-identity
    contract (see ``docs/PERSISTENCE.md``).
    """
    snap_epoch = int(snapshot.get("wal_epoch", 0))
    live = [r for r in records if int(r.get("epoch", 0)) == snap_epoch]
    stale = [r for r in records if int(r.get("epoch", 0)) > snap_epoch]
    if stale:
        raise ValueError(
            f"{source}: records from epoch {stale[0]['epoch']} postdate "
            f"snapshot epoch {snap_epoch} (mismatched snapshot/journal "
            "files)"
        )
    snap_admits = (int(snapshot["manager"]["admitted"])
                   + int(snapshot["manager"]["rejected_duplicates"]))
    for record in live:
        if record["kind"] != "manager_counters":
            continue
        tail_admits = (int(record["data"]["admitted"])
                       + int(record["data"]["rejected_duplicates"]))
        if tail_admits > snap_admits:
            warnings.warn(
                f"{source}: journal tail contains response-generating "
                "admissions; the recovered service's model decode "
                "positions lag the crashed one's, so recovery is outside "
                "the bit-identity contract (docs/PERSISTENCE.md) — "
                "bound admission windows with checkpoints",
                stacklevel=2,
            )
            break
    return live


def apply_wal(service: "ICCacheService", records: list[dict]) -> int:
    """Replay journal records onto a freshly restored service.

    Physical redo in seq order.  The cache must have no journal attached
    (recovery must not re-journal itself); returns the number of records
    applied.
    """
    cache = service.cache
    if cache.journal is not None:
        raise RuntimeError("detach the cache journal before WAL replay")
    for record in records:
        kind = record["kind"]
        data = record["data"]
        if kind == "add":
            cache.add(example_from_record(data["example"]))
        elif kind == "overwrite":
            cache.overwrite(example_from_record(data["example"]))
        elif kind == "remove":
            cache.remove(data["example_id"])
        elif kind == "retrain":
            _apply_retrain(cache, data)
        elif kind == "decay":
            _apply_decay(service.manager, int(data["periods"]))
        elif kind == "clock":
            service.clock.advance_to(float(data["now"]))
        elif kind == "manager_counters":
            manager = service.manager
            manager._next_id = int(data["next_id"])
            manager.admitted = int(data["admitted"])
            manager.rejected_duplicates = int(data["rejected_duplicates"])
            manager.evictions = int(data["evictions"])
        elif kind == "replay_rewrite":
            _apply_replay_rewrite(service, data)
        else:
            raise ValueError(f"unknown WAL record kind {kind!r}")
    return len(records)


def _apply_retrain(cache, data: dict) -> None:
    """Re-fire the lazy K-Means (re)trains the original search triggered.

    The flat storage's row order at this point in the replay matches the
    original run's (adds/removes were replayed in order), so a forced
    retrain reproduces identical centroids and blocks.
    """
    index = cache._index
    per_shard = data.get("per_shard")
    if per_shard is not None:
        for shard, target in zip(index._shards, per_shard):
            while shard.trainings < int(target):
                if not shard.retrain():
                    raise RuntimeError(
                        "WAL retrain replay diverged: shard refused to train"
                    )
    else:
        while index.trainings < int(data["trainings"]):
            if not index.retrain():
                raise RuntimeError(
                    "WAL retrain replay diverged: index refused to train"
                )


def _apply_decay(manager, periods: int) -> None:
    """Redo one decay pass: same factor, same periods, same clock math.

    Vectorized over the cache's columnar table when one is present (the
    same ``values *= factor ** periods`` the live pass runs, so replay
    stays bit-identical); the per-object loop remains for table-less
    cache stand-ins.
    """
    table = getattr(manager.cache, "table", None)
    if table is not None:
        table.decay_gains(manager.config.decay_factor, periods)
    else:
        for example in manager.cache:
            example.offload_gain.decay(manager.config.decay_factor, periods)
            example.gain_ema.decay(manager.config.decay_factor, periods)
    manager._last_decay += periods * manager.config.decay_period_s


def _apply_replay_rewrite(service: "ICCacheService", data: dict) -> None:
    """Redo one replay refinement: overwrite the example's refined fields
    in place (the embedding is untouched — replay never re-embeds) and
    advance the teacher's decode position for that request."""
    record = data["example"]
    example = service.cache.get(record["example_id"])
    example.response_text = record["response_text"]
    example.quality = float(record["quality"])
    example.replay_count = int(record["replay_count"])
    example.access_count = int(record["access_count"])
    restore_ema(example.gain_ema, record["gain_ema"])
    restore_ema(example.offload_gain, record["offload_gain"])
    restore_ema(example.feedback_quality, record["feedback_quality"])
    # Keep the byte counter exact (rewrites change plaintext size).
    cache = service.cache
    new_size = example.plaintext_bytes
    cache._total_bytes += new_size - cache._bytes_by_id[example.example_id]
    cache._bytes_by_id[example.example_id] = new_size
    teacher = service.manager.replay_engine.teacher \
        if service.manager.replay_engine is not None else None
    if teacher is not None:
        for request_id, count in data["teacher_decode_counts"].items():
            teacher._decode_counts[request_id] = int(count)


class Checkpointer:
    """Snapshot + WAL under one directory, with size-triggered compaction.

    ``directory/snapshot.json`` is the latest full snapshot;
    ``directory/wal.jsonl`` journals cache mutations since.  When the WAL
    grows past ``compact_after_bytes``, the next record triggers a fresh
    snapshot and truncates the journal — compaction is just "checkpoint
    now".  :meth:`recover` inverts the whole arrangement.
    """

    SNAPSHOT_NAME = "snapshot.json"
    WAL_NAME = "wal.jsonl"

    def __init__(self, service: "ICCacheService", directory: str | Path,
                 compact_after_bytes: int | None = None,
                 attach: bool = True) -> None:
        self.service = service
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compact_after_bytes = compact_after_bytes
        # Pair the journal with the existing snapshot's generation, so a
        # resumed Checkpointer keeps stamping records the next recovery
        # will accept.  Raw json.loads on purpose: one int is needed, not
        # the full array decode load_snapshot performs.
        self._epoch = 0
        if self.snapshot_path.exists():
            header = json.loads(
                self.snapshot_path.read_text(encoding="utf-8")
            )
            self._epoch = int(header.get("wal_epoch", 0))
        self.wal = WriteAheadLog(self.wal_path, epoch=self._epoch)
        self.checkpoints = 0
        self.compactions = 0
        # Bound once: ``self._record`` would mint a fresh bound-method
        # object per attribute access, so identity checks against the
        # attached journal need a stable callable.
        self._journal_callback = self._record
        self._checkpointing = False
        if attach:
            self.attach()

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / self.WAL_NAME

    def attach(self) -> None:
        """Start journaling the service's cache mutations."""
        self.service.cache.journal = self._journal_callback

    def detach(self) -> None:
        self.service.cache.journal = None
        self.wal.close()

    def checkpoint(self) -> Path:
        """Write a fresh snapshot and truncate the WAL.

        This is both the periodic checkpoint (the runtime's
        ``CheckpointTickSource`` calls it on a cadence) and the compaction
        primitive.  Ordering matters twice over: the snapshot is written
        (atomically) with a *bumped* WAL epoch before the journal is
        truncated, so a crash in between leaves old-epoch records that
        recovery recognizes as already subsumed; and the journal is
        re-armed *before* the ``on_checkpoint`` middleware hook fires, so
        a hook that mutates the cache journals into the fresh WAL — its
        mutation is recoverable even though it post-dates the snapshot.
        Re-attaching also resets the retrain-detection baseline to the
        just-snapshotted training count.
        """
        from repro.persistence.snapshot import write_snapshot

        self._checkpointing = True
        try:
            new_epoch = self._epoch + 1
            path = write_snapshot(self.service, self.snapshot_path,
                                  wal_epoch=new_epoch)
            self._epoch = new_epoch
            self.wal.reset(epoch=new_epoch)
            if self.service.cache.journal is self._journal_callback:
                self.attach()   # reset the retrain-detection baseline
            self.checkpoints += 1
            self.service.pipeline.run_checkpoint(self.service)
        finally:
            self._checkpointing = False
        return path

    def _record(self, kind: str, payload) -> None:
        self.wal.record(kind, payload)
        if (self.compact_after_bytes is not None
                and not self._checkpointing
                and self.wal.size_bytes > self.compact_after_bytes):
            # The triggering record's effect is already part of live state,
            # so the fresh snapshot subsumes it; dropping the journal loses
            # nothing.  ``_checkpointing`` guards against re-entry when an
            # on_checkpoint hook itself mutates the cache.
            self.checkpoint()
            self.compactions += 1

    @classmethod
    def recover(cls, directory: str | Path,
                config: "ICCacheConfig | None" = None,
                models: dict | None = None,
                shard_fn=None) -> "ICCacheService":
        """Rebuild a service from ``directory``: snapshot, then WAL replay.

        Returns the recovered service with no journal attached.  To resume
        durable operation, wrap it in a new :class:`Checkpointer` over the
        same directory **and call** :meth:`checkpoint` — that compacts the
        just-replayed tail into a fresh snapshot, so the next recovery
        does not replay it again (construction alone never snapshots).
        """
        directory = Path(directory)
        snapshot = load_snapshot(directory / cls.SNAPSHOT_NAME)
        service = restore_service(snapshot, config=config, models=models,
                                  shard_fn=shard_fn)
        records = WriteAheadLog.read(directory / cls.WAL_NAME)
        apply_wal(service, filter_stale_records(records, snapshot,
                                                source=str(directory)))
        return service
