"""Operator CLI for durable state: ``python -m repro.persistence.cli``.

Three subcommands (``docs/PERSISTENCE.md`` has a worked walkthrough):

* ``snapshot`` — build a seeded demo service (example bank + optional
  online traffic), then write a snapshot.  Useful for producing fixtures,
  CI artifacts, and cache pre-warming images.
* ``inspect`` — print a snapshot's header and state inventory without
  rebuilding a service (cheap, read-only).
* ``restore`` — rebuild a service from a snapshot (optionally replaying a
  WAL tail), report its state, and optionally serve a few requests to
  prove the warm restart works.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _build_demo_service(seed: int, bank: int, serve: int, shards: int):
    """A seeded service with learned state, like the recovery tests use."""
    from repro.core.config import ICCacheConfig, ManagerConfig
    from repro.core.service import ICCacheService
    from repro.workload.datasets import SyntheticDataset

    config = ICCacheConfig(seed=seed, cache_shards=shards,
                           manager=ManagerConfig(sanitize=False))
    service = ICCacheService(config)
    dataset = SyntheticDataset("ms_marco", scale=0.0005, seed=seed)
    # Bank first, online second: SyntheticDataset generation is
    # call-order dependent, and this is the order every bench uses.
    service.seed_cache(dataset.example_bank_requests()[:bank])
    for request in dataset.online_requests(serve):
        service.serve(request, load=0.3)
    return service


def cmd_snapshot(args: argparse.Namespace) -> int:
    service = _build_demo_service(args.seed, args.bank, args.serve,
                                  args.shards)
    path = service.save(args.out)
    print(f"wrote {path} ({path.stat().st_size} bytes): "
          f"{len(service.cache)} examples, {service.stats.served} served")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.persistence.snapshot import (
        load_snapshot,
        snapshot_example_count,
    )

    snapshot = load_snapshot(args.path)
    cache = snapshot["cache"]
    index = cache["index"]
    stats = snapshot["service"]["stats"]
    sidecar = snapshot.get("sidecar")
    sidecar_path = Path(args.path).with_name(sidecar) if sidecar else None
    n_examples = snapshot_example_count(cache)
    lines = [
        f"format:        {snapshot['format']} v{snapshot['version']}",
        "sidecar:       " + (
            f"{sidecar} ({sidecar_path.stat().st_size} bytes, mmap)"
            if sidecar_path is not None and sidecar_path.exists()
            else "none (arrays inline)"
        ),
        f"clock:         {snapshot['clock_now']:.3f} s",
        f"cache:         {n_examples} examples, "
        f"{cache['total_bytes']} plaintext bytes, "
        f"{'sharded' if cache['sharded'] else 'monolithic'} index, "
        f"{'columnar' if 'examples_columns' in cache else 'record'} pool",
    ]
    if "examples_columns" in cache:
        # v3 columnar pool: one line per bookkeeping column, then the
        # string blobs and the dense matrices.
        columns = cache["examples_columns"]
        for name, arr in columns["bookkeeping"].items():
            arr = np.asarray(arr)
            lines.append(f"  col {name:<30} {arr.dtype.str:>5} "
                         f"{arr.nbytes:>10} bytes")
        blobs = [("ids", columns["ids"]),
                 ("response_texts", columns["response_texts"]),
                 ("source_models", columns["source_models"])] + [
                (f"request.{key}", columns["request"][key])
                for key in ("request_ids", "datasets", "tasks",
                            "texts", "metadata")]
        for name, blob in blobs:
            data = np.asarray(blob["data"])
            lines.append(f"  str {name:<30} utf-8 "
                         f"{data.nbytes:>10} bytes")
        for name, arr in (("embeddings", columns["embeddings"]),
                          ("request.latents", columns["request"]["latents"])):
            arr = np.asarray(arr)
            lines.append(f"  mat {name:<30} {arr.dtype.str:>5} "
                         f"{arr.nbytes:>10} bytes  shape {arr.shape}")
    if cache["sharded"]:
        sizes = [len(s["flat"]["keys"]) for s in index["shards"]]
        trains = [s["trainings"] for s in index["shards"]]
        lines.append(f"shards:        sizes={sizes} trainings={trains}")
    else:
        lines.append(
            f"index:         {len(index['flat']['keys'])} rows, "
            f"{0 if index['centroids'] is None else index['centroids'].shape[0]}"
            f" clusters, {index['trainings']} trainings, "
            f"churn={index['churn']}"
        )
    lines += [
        f"stats:         served={stats['served']} "
        f"offloaded={stats['offloaded']} bypasses={stats['bypasses']}",
        f"learning:      router_updates={stats['router_updates']} "
        f"proxy_updates={stats['proxy_updates']}",
        f"models:        "
        + ", ".join(f"{name} ({len(m['decode_counts'])} decode streams)"
                    for name, m in snapshot["models"].items()),
        f"in flight:     {len(snapshot['in_flight'])} "
        "(not restorable; lost on crash)",
    ]
    print("\n".join(lines))
    if args.json:
        summary = {
            "version": snapshot["version"],
            "examples": n_examples,
            "columnar": "examples_columns" in cache,
            "total_bytes": cache["total_bytes"],
            "served": stats["served"],
        }
        print(json.dumps(summary))
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    from repro.persistence.snapshot import load_snapshot, restore_service
    from repro.persistence.wal import (
        Checkpointer,
        WriteAheadLog,
        apply_wal,
        filter_stale_records,
    )
    from repro.workload.datasets import SyntheticDataset

    path = Path(args.path)
    if path.is_dir():
        service = Checkpointer.recover(path)
    else:
        snapshot = load_snapshot(path)
        service = restore_service(snapshot)
        if args.wal:
            # Same stale-epoch filtering as Checkpointer.recover, so a
            # journal stranded by a crash mid-checkpoint is not
            # double-applied when the files are restored individually.
            records = filter_stale_records(
                WriteAheadLog.read(args.wal), snapshot, source=args.wal
            )
            applied = apply_wal(service, records)
            print(f"replayed {applied} WAL records from {args.wal}")
    print(f"restored: {len(service.cache)} examples, "
          f"{service.stats.served} served, clock={service.clock.now:.3f} s")
    if args.serve:
        dataset = SyntheticDataset("ms_marco", scale=0.0005,
                                   seed=service.config.seed)
        dataset.example_bank_requests()  # keep generation call order stable
        requests = dataset.online_requests(service.stats.served + args.serve)
        for request in requests[-args.serve:]:
            outcome = service.serve(request, load=0.3)
            print(f"  {request.request_id} -> {outcome.choice.model_name} "
                  f"(quality {outcome.result.quality:.3f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persistence.cli",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot",
                          help="build a seeded demo service and snapshot it")
    snap.add_argument("--out", default="snapshot.json",
                      help="output snapshot path")
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument("--bank", type=int, default=120,
                      help="example-bank requests to seed")
    snap.add_argument("--serve", type=int, default=20,
                      help="online requests to serve before snapshotting")
    snap.add_argument("--shards", type=int, default=1,
                      help="cache shards (>1 = ShardedExampleCache)")
    snap.set_defaults(fn=cmd_snapshot)

    ins = sub.add_parser("inspect",
                         help="print a snapshot's header and inventory")
    ins.add_argument("path", help="snapshot file")
    ins.add_argument("--json", action="store_true",
                     help="also print a machine-readable summary line")
    ins.set_defaults(fn=cmd_inspect)

    res = sub.add_parser("restore",
                         help="rebuild a service from a snapshot "
                              "(or a checkpoint directory)")
    res.add_argument("path",
                     help="snapshot file, or a Checkpointer directory "
                          "containing snapshot.json + wal.jsonl")
    res.add_argument("--wal", help="WAL file to replay after the snapshot")
    res.add_argument("--serve", type=int, default=0,
                     help="serve this many demo requests after restoring")
    res.set_defaults(fn=cmd_restore)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except FileNotFoundError as exc:
        # Operator-facing tool: a mistyped path gets a one-line message and
        # a distinct exit code, not a traceback.
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: not a valid snapshot/WAL (corrupt JSON): {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        # load_snapshot/WAL validation errors (wrong format, bad seq, ...).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
