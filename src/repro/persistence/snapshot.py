"""Versioned full-state snapshots of a running :class:`ICCacheService`.

The snapshot is the durable half of the persistence subsystem (the WAL in
:mod:`repro.persistence.wal` covers the tail between snapshots).  Its
defining property is *warm-restart determinism*: a service rebuilt from a
snapshot serves bit-identically to one that never stopped, which means the
format must capture more than the obvious data:

* **Examples** — full records including the per-example gain/feedback EMAs
  (section 4.3 bookkeeping) and the cache's per-id recorded byte sizes.
* **Index layout, not just membership** — the flat storage's row order is
  the index's entire add/remove history (swap-delete moves the last row
  into the hole) and is exactly what K-Means reads at retrain time, so it
  is serialized as-is; the IVF cluster blocks, centroids, churn counter,
  and training count ride along (see ``to_state`` on each index class).
* **Learned state** — router posteriors, proxy regression state, selector
  threshold adaptation, and the live ablation flags.
* **RNG stream positions** — the service, router, and feedback generators'
  bit-generator states plus every model's per-request decode counts; the
  repo's RNG discipline (per-entity seeded streams) makes these few
  numbers sufficient to resume every stochastic sequence mid-stream.

On disk a snapshot is a JSON manifest plus (since format version 2) a raw
little-endian **sidecar** file holding every array's bytes at 64-byte-aligned
offsets; the manifest stores ``{offset, dtype, shape}`` references and the
sidecar's filename.  Restore opens the sidecar once with ``np.memmap`` in
copy-on-write mode, so arrays come back as O(1) views — pages fault in on
first touch and mutations stay private — instead of paying a JSON+base64
decode per array.  The sidecar is content-hash named
(``<manifest>.<digest>.bin``), which makes the bin-then-json replace order
crash-safe: a half-finished write never changes the file the previous
manifest points at.

Format version 3 stores the example pool **columnar**: the cache's
:class:`~repro.core.table.ExampleTable` bookkeeping columns ride the
sidecar as whole arrays, string fields become offset-indexed UTF-8 blobs
(one ``int64`` offsets array of length n+1 plus one ``uint8`` byte array
per column), and embeddings/latents become one ``(n, dim)`` matrix each.
Restore is then bulk array adoption plus cheap per-example view
construction instead of per-example record decoding — two orders of
magnitude fewer Python-level operations.  Version-1 snapshots (arrays
inline as base64 of raw bytes) and version-2 per-example-record documents
still load; all encodings round-trip bit-exactly.  Scalar floats rely on
JSON's shortest-roundtrip repr, which is also exact.  ``version`` gates
compatibility: readers reject unknown versions instead of guessing.

Not captured (by design): in-flight requests parked in the pipeline
(``pipeline._pending``) — a crash loses them, like any serving system;
their ids are recorded under ``in_flight`` for operator visibility.
Custom ``models=`` or ``shard_fn=`` objects are code, not state, and must
be re-supplied to :func:`restore_service`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.stats import EMA
from repro.core.cache import ShardedExampleCache
from repro.core.config import (
    ICCacheConfig,
    IndexConfig,
    ManagerConfig,
    RouterConfig,
    SelectorConfig,
)
from repro.core.example import Example
from repro.core.table import ExampleTable, column_schema
from repro.vectorstore.ivf import IVFIndex
from repro.vectorstore.sharded import ShardedIndex
from repro.workload.request import Request, TaskType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> persistence)
    from repro.core.service import ICCacheService

SNAPSHOT_FORMAT = "ic-cache-snapshot"
SNAPSHOT_VERSION = 3
#: Versions this reader restores: 1 = arrays inline as base64, 2 = arrays
#: in the mmap sidecar (base64 still accepted anywhere in a v2 document),
#: 3 = the example pool as bulk columns + string blobs (``examples_columns``)
#: with per-example records kept as the fallback encoding.  Unknown (v4+)
#: versions are rejected, never guessed at.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Sidecar array offsets are padded to this alignment so every mapped view
#: is at least cache-line aligned regardless of the preceding array's size.
SIDECAR_ALIGN = 64


# -- JSON-safe encoding of numpy state ------------------------------------

def encode_array(array: np.ndarray) -> dict:
    """One ndarray as a JSON-safe record, bit-exact.

    Raw bytes (base64) plus ``dtype.str`` — which includes byte order — and
    shape.  Never textual floats: ``repr`` round-trips in Python but a raw
    byte image is unambiguous across readers and obviously exact.
    """
    arr = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
    }


def decode_array(record: dict) -> np.ndarray:
    arr = np.frombuffer(base64.b64decode(record["__ndarray__"]),
                        dtype=np.dtype(record["dtype"]))
    return arr.reshape(record["shape"]).copy()


def encode_str_column(strings: list[str]) -> dict:
    """A string column as one offset-indexed UTF-8 blob (two arrays).

    ``offsets`` has n+1 int64 entries; string i is
    ``data[offsets[i]:offsets[i+1]]`` decoded as UTF-8.  Two arrays instead
    of n JSON strings means the bytes ride the sidecar and restore decodes
    straight out of the mapped pages.
    """
    encoded = [s.encode("utf-8") for s in strings]
    lengths = np.fromiter((len(b) for b in encoded), dtype=np.int64,
                          count=len(encoded))
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return {
        "offsets": offsets,
        "data": np.frombuffer(b"".join(encoded), dtype=np.uint8),
    }


def decode_str_column(record: dict) -> list[str]:
    """Inverse of :func:`encode_str_column`."""
    offsets = np.asarray(record["offsets"]).tolist()
    data = np.ascontiguousarray(record["data"], dtype=np.uint8).tobytes()
    return [data[offsets[i]:offsets[i + 1]].decode("utf-8")
            for i in range(len(offsets) - 1)]


class SidecarBuilder:
    """Accumulates raw little-endian array bytes for the sidecar file.

    Each array lands at a :data:`SIDECAR_ALIGN`-aligned offset; the returned
    manifest record carries everything needed to map it back
    (``{offset, dtype, shape}`` under the ``__extarray__`` marker).
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._offset = 0
        self.count = 0

    @property
    def data_bytes(self) -> int:
        return self._offset

    def add(self, array: np.ndarray) -> dict:
        arr = np.ascontiguousarray(array)
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        self.count += 1
        pad = (-self._offset) % SIDECAR_ALIGN
        if pad:
            self._chunks.append(b"\x00" * pad)
            self._offset += pad
        record = {"__extarray__": {
            "offset": self._offset,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        }}
        payload = arr.tobytes()
        self._chunks.append(payload)
        self._offset += len(payload)
        return record

    def tobytes(self) -> bytes:
        return b"".join(self._chunks)


class SidecarReader:
    """Resolves ``__extarray__`` records against a memory-mapped sidecar.

    The file is mapped once, lazily, in ``mode='c'`` (copy-on-write): every
    resolved array is a view into the mapping, so restore cost is O(number
    of arrays), pages fault in on first touch, and any later in-place
    mutation dirties private pages without ever writing the snapshot back.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._buf: np.ndarray | None = None

    def resolve(self, record: dict) -> np.ndarray:
        dtype = np.dtype(record["dtype"])
        shape = tuple(int(s) for s in record["shape"])
        nbytes = dtype.itemsize * math.prod(shape)
        if nbytes == 0:
            return np.empty(shape, dtype=dtype)
        if self._buf is None:
            if not self.path.exists():
                raise ValueError(
                    f"snapshot references sidecar {self.path.name} "
                    "but the file is missing"
                )
            # Downcast the memmap to a plain ndarray view (same COW pages,
            # kept alive through .base): np.memmap.__array_finalize__ makes
            # per-array slicing ~10x more expensive, and a snapshot holds
            # one array per example.
            self._buf = np.asarray(
                np.memmap(self.path, dtype=np.uint8, mode="c"))
        offset = int(record["offset"])
        raw = self._buf[offset: offset + nbytes]
        if raw.shape[0] != nbytes:
            raise ValueError(
                f"sidecar {self.path.name} truncated: need {nbytes} bytes "
                f"at offset {offset}, have {raw.shape[0]}"
            )
        return raw.view(dtype).reshape(shape)


def _encode(obj, sidecar: SidecarBuilder | None = None):
    """Recursively convert a state structure into JSON-serializable form.

    With a ``sidecar`` builder, array bytes go to the sidecar and the JSON
    gets an ``__extarray__`` reference; without one (the WAL path, which
    keeps self-contained single-line records), arrays inline as base64.
    """
    if isinstance(obj, np.ndarray):
        return sidecar.add(obj) if sidecar is not None else encode_array(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, dict):
        return {key: _encode(value, sidecar) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(value, sidecar) for value in obj]
    return obj


def _decode(obj, sidecar: SidecarReader | None = None):
    """Inverse of :func:`_encode` (arrays come back as ndarrays).

    Handles both encodings regardless of the writer: inline base64 decodes
    to a fresh array, ``__extarray__`` resolves to a copy-on-write view of
    the mapped sidecar.
    """
    # Exact type checks: json.loads only ever yields dict/list/str/int/
    # float/bool/None, and this walk visits every node of a snapshot (tens
    # of records per example), so isinstance dispatch is measurable.
    t = type(obj)
    if t is dict:
        if "__ndarray__" in obj:
            return decode_array(obj)
        if "__extarray__" in obj:
            if sidecar is None:
                raise ValueError(
                    "snapshot contains sidecar array references but no "
                    "sidecar file is associated with this document"
                )
            return sidecar.resolve(obj["__extarray__"])
        return {key: _decode(value, sidecar) for key, value in obj.items()}
    if t is list:
        return [_decode(value, sidecar) for value in obj]
    return obj


# -- component records ------------------------------------------------------

def ema_record(ema: EMA) -> dict:
    return {"alpha": ema.alpha, "value": ema._value, "count": ema.count}


def ema_from_record(record: dict) -> EMA:
    ema = EMA(alpha=record["alpha"])
    ema._value = record["value"]
    ema.count = int(record["count"])
    return ema


def restore_ema(ema: EMA, record: dict) -> None:
    """Overwrite an existing EMA's state in place (alpha included)."""
    ema.alpha = record["alpha"]
    ema._value = record["value"]
    ema.count = int(record["count"])


def rng_state(rng: np.random.Generator) -> dict:
    """The bit-generator state dict (plain ints, JSON-safe)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise ValueError(
            f"snapshot RNG is {state['bit_generator']!r}, this process "
            f"built {rng.bit_generator.state['bit_generator']!r}"
        )
    rng.bit_generator.state = state


def request_record(request: Request) -> dict:
    return {
        "request_id": request.request_id,
        "dataset": request.dataset,
        "task": request.task.value,
        "text": request.text,
        "latent": np.asarray(request.latent, dtype=float),
        "topic_id": request.topic_id,
        "difficulty": request.difficulty,
        "prompt_tokens": request.prompt_tokens,
        "target_output_tokens": request.target_output_tokens,
        "arrival_time": request.arrival_time,
        "metadata": request.metadata,
    }


def request_from_record(record: dict) -> Request:
    return Request(
        request_id=record["request_id"],
        dataset=record["dataset"],
        task=TaskType(record["task"]),
        text=record["text"],
        latent=np.asarray(record["latent"], dtype=float),
        topic_id=int(record["topic_id"]),
        difficulty=float(record["difficulty"]),
        prompt_tokens=int(record["prompt_tokens"]),
        target_output_tokens=int(record["target_output_tokens"]),
        arrival_time=float(record["arrival_time"]),
        metadata=dict(record["metadata"]),
    )


def example_record(example: Example) -> dict:
    return {
        "example_id": example.example_id,
        "request": request_record(example.request),
        "response_text": example.response_text,
        "embedding": np.asarray(example.embedding, dtype=float),
        "quality": example.quality,
        "source_model": example.source_model,
        "source_cost": example.source_cost,
        "created_at": example.created_at,
        "access_count": example.access_count,
        "replay_count": example.replay_count,
        "gain_ema": ema_record(example.gain_ema),
        "offload_gain": ema_record(example.offload_gain),
        "feedback_quality": ema_record(example.feedback_quality),
    }


def example_from_record(record: dict) -> Example:
    return Example(
        example_id=record["example_id"],
        request=request_from_record(record["request"]),
        response_text=record["response_text"],
        embedding=np.asarray(record["embedding"], dtype=float),
        quality=float(record["quality"]),
        source_model=record["source_model"],
        source_cost=float(record["source_cost"]),
        created_at=float(record["created_at"]),
        access_count=int(record["access_count"]),
        replay_count=int(record["replay_count"]),
        gain_ema=ema_from_record(record["gain_ema"]),
        offload_gain=ema_from_record(record["offload_gain"]),
        feedback_quality=ema_from_record(record["feedback_quality"]),
    )


def examples_columns_state(cache) -> dict | None:
    """The example pool as bulk columns + string blobs (format v3).

    Rows are emitted in cache-insertion order (dict order IS iteration
    order, and downstream passes — decay, replay ranking ties — iterate
    the pool), NOT table-row order: table rows are a swap-delete history
    artifact and carry no meaning.  Returns ``None`` when the pool cannot
    be expressed columnar — examples not attached to the cache's table, or
    heterogeneous embedding/latent dimensions — in which case the caller
    falls back to per-example records inside the same v3 document.
    """
    examples = list(cache)
    n = len(examples)
    table = getattr(cache, "table", None)
    if table is None or len(table) != n:
        return None

    def _matrix(arrays: list[np.ndarray]) -> np.ndarray | None:
        if not arrays:
            return np.empty((0, 0))
        if any(a.ndim != 1 or a.shape != arrays[0].shape for a in arrays):
            return None
        return np.stack(arrays)

    embeddings = _matrix([ex.embedding for ex in examples])
    latents = _matrix([np.asarray(ex.request.latent, dtype=float)
                       for ex in examples])
    if embeddings is None or latents is None:
        return None
    ids = [ex.example_id for ex in examples]
    requests = [ex.request for ex in examples]
    bytes_by_id = cache._bytes_by_id
    bookkeeping = table.gather(table.rows_for(ids))
    return {
        "n": n,
        "ids": encode_str_column(ids),
        "response_texts": encode_str_column(
            [ex.response_text for ex in examples]),
        "source_models": encode_str_column(
            [ex.source_model for ex in examples]),
        "embeddings": embeddings,
        "recorded_bytes": np.fromiter(
            (bytes_by_id[i] for i in ids), dtype=np.int64, count=n),
        "bookkeeping": bookkeeping,
        "request": {
            "request_ids": encode_str_column(
                [r.request_id for r in requests]),
            "datasets": encode_str_column([r.dataset for r in requests]),
            "tasks": encode_str_column([r.task.value for r in requests]),
            "texts": encode_str_column([r.text for r in requests]),
            # Metadata dicts as JSON strings ("" for the common empty
            # case), run through _encode first so embedded ndarrays keep
            # the bit-exact base64 encoding the record path used.
            "metadata": encode_str_column([
                json.dumps(_encode(r.metadata), separators=(",", ":"))
                if r.metadata else "" for r in requests
            ]),
            "latents": latents,
            "topic_ids": np.fromiter((r.topic_id for r in requests),
                                     dtype=np.int64, count=n),
            "difficulties": np.fromiter((r.difficulty for r in requests),
                                        dtype=np.float64, count=n),
            "prompt_tokens": np.fromiter((r.prompt_tokens for r in requests),
                                         dtype=np.int64, count=n),
            "target_output_tokens": np.fromiter(
                (r.target_output_tokens for r in requests),
                dtype=np.int64, count=n),
            "arrival_times": np.fromiter((r.arrival_time for r in requests),
                                         dtype=np.float64, count=n),
        },
    }


def _restore_examples_columns(columns: dict) -> tuple[dict, dict, ExampleTable]:
    """Bulk-rebuild the example pool from an ``examples_columns`` section.

    Returns ``(examples dict, bytes_by_id, table)``.  The table adopts the
    bookkeeping arrays directly (copy-on-write views when the snapshot has
    a sidecar); each Example is a cheap attached view bound to its row, so
    the per-example cost is a handful of ``__dict__`` stores instead of
    record decoding, validation, and memo priming.
    """
    n = int(columns["n"])
    table = ExampleTable.adopt_columns(
        n, {name: np.asarray(columns["bookkeeping"][name])
            for name, _ in column_schema()})
    ids = decode_str_column(columns["ids"])
    response_texts = decode_str_column(columns["response_texts"])
    source_models = decode_str_column(columns["source_models"])
    embeddings = np.asarray(columns["embeddings"], dtype=float)
    req = columns["request"]
    request_ids = decode_str_column(req["request_ids"])
    datasets = decode_str_column(req["datasets"])
    tasks = decode_str_column(req["tasks"])
    texts = decode_str_column(req["texts"])
    metadata = decode_str_column(req["metadata"])
    latents = np.asarray(req["latents"], dtype=float)
    topic_ids = np.asarray(req["topic_ids"]).tolist()
    difficulties = np.asarray(req["difficulties"]).tolist()
    prompt_tokens = np.asarray(req["prompt_tokens"]).tolist()
    target_output_tokens = np.asarray(req["target_output_tokens"]).tolist()
    arrival_times = np.asarray(req["arrival_times"]).tolist()
    task_by_value = {task.value: task for task in TaskType}
    examples: dict[str, Example] = {}
    for i in range(n):
        # Bypass the dataclass constructor: __post_init__ validation ran
        # when the record was first built, and serialized prompt_tokens are
        # always the post-init (positive) values.
        request = object.__new__(Request)
        request.__dict__.update(
            request_id=request_ids[i],
            dataset=datasets[i],
            task=task_by_value[tasks[i]],
            text=texts[i],
            latent=latents[i],
            topic_id=topic_ids[i],
            difficulty=difficulties[i],
            prompt_tokens=prompt_tokens[i],
            target_output_tokens=target_output_tokens[i],
            arrival_time=arrival_times[i],
            metadata=_decode(json.loads(metadata[i])) if metadata[i] else {},
        )
        examples[ids[i]] = Example._attached_view(
            table, i, ids[i], request, response_texts[i],
            source_models[i], embeddings[i],
        )
    bytes_by_id = dict(zip(
        ids, np.asarray(columns["recorded_bytes"]).tolist()))
    return examples, bytes_by_id, table


def snapshot_example_count(cache_state_doc: dict) -> int:
    """Number of examples in a ``cache_state`` section, any format."""
    if "examples_columns" in cache_state_doc:
        return int(cache_state_doc["examples_columns"]["n"])
    return len(cache_state_doc["examples"])


def cache_state(cache) -> dict:
    """Serializable state of an ExampleCache / ShardedExampleCache."""
    state = {
        "sharded": isinstance(cache, ShardedExampleCache),
        "total_bytes": cache.total_bytes,
        "index": cache._index.to_state(),
    }
    columns = examples_columns_state(cache)
    if columns is not None:
        state["examples_columns"] = columns
    else:
        # Per-example record fallback (also the only v1/v2 encoding).
        # Insertion order is preserved: dict order IS iteration order and
        # downstream passes (decay, replay ranking ties) iterate the pool.
        state["examples"] = [example_record(ex) for ex in cache]
        state["bytes_by_id"] = dict(cache._bytes_by_id)
    return state


def restore_cache_state(cache, state: dict, shard_fn=None) -> None:
    """Rebuild a cache's contents in place from :func:`cache_state` output.

    In place because the selector, manager, and pipeline policies all hold
    references to the live cache object — swapping internals under them is
    exactly what a warm restart needs.  ``shard_fn`` re-supplies a custom
    shard-assignment function (code, not state) for sharded layouts;
    existing keys keep their memoized assignments either way, but new adds
    would silently fall back to hash placement without it.

    The columnar table is rebuilt along with the pool: bulk array adoption
    for v3 ``examples_columns`` documents, re-attachment in insertion order
    for per-example-record documents (v1/v2, and the v3 fallback).
    """
    sharded = bool(state["sharded"])
    if sharded != isinstance(cache, ShardedExampleCache):
        raise ValueError(
            "snapshot cache layout does not match the configured one "
            f"(snapshot sharded={sharded}); check config.cache_shards"
        )
    if "examples_columns" in state:
        examples, bytes_by_id, table = _restore_examples_columns(
            state["examples_columns"])
        cache._examples = examples
        cache._bytes_by_id = bytes_by_id
        cache._table = table
    else:
        examples = [example_from_record(rec) for rec in state["examples"]]
        table = ExampleTable(capacity=len(examples))
        for example in examples:
            table.attach(example)
        cache._examples = {ex.example_id: ex for ex in examples}
        cache._bytes_by_id = {key: int(value)
                              for key, value in state["bytes_by_id"].items()}
        cache._table = table
    cache._total_bytes = int(state["total_bytes"])
    if sharded:
        cache._index = ShardedIndex.from_state(state["index"],
                                               shard_fn=shard_fn)
    else:
        cache._index = IVFIndex.from_state(state["index"])
    cache._journal = None
    cache._journal_trainings = 0


# -- the service snapshot ---------------------------------------------------

def service_state(service: "ICCacheService", wal_epoch: int = 0) -> dict:
    """Everything a warm restart needs, as one plain structure.

    ``wal_epoch`` stamps which journal generation this snapshot pairs
    with: :class:`~repro.persistence.wal.Checkpointer` bumps it every
    checkpoint, so recovery can tell a fresh WAL tail from records left
    behind by a crash *between* snapshot write and journal truncation.
    """
    router = service.router
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "wal_epoch": int(wal_epoch),
        "config": asdict(service.config),
        "clock_now": service.clock.now,
        "in_flight": sorted(service.pipeline._pending),
        "selector_enabled": service.selector_enabled,
        "router_enabled": service.router_enabled,
        "cache": cache_state(service.cache),
        "selector": {
            "utility_threshold": service.selector.utility_threshold,
            "requests_seen": service.selector._requests_seen,
            "recent_scored": [[u, t] for u, t in service.selector._recent_scored],
        },
        "proxy": {
            "precision": service.proxy._precision,
            "moment": service.proxy._moment,
            "weights": service.proxy._weights,
            "updates": service.proxy.updates,
        },
        "router": {
            "rng": rng_state(router._rng),
            "load_ema": ema_record(router.load_ema),
            "decisions": router.decisions,
            "feedback_solicitations": router.feedback_solicitations,
            "arms": {
                name: {
                    "precision": posterior._precision,
                    "moment": posterior._moment,
                    "pulls": posterior.pulls,
                }
                for name, posterior in router._posteriors.items()
            },
        },
        "manager": {
            "last_decay": service.manager._last_decay,
            "next_id": service.manager._next_id,
            "admitted": service.manager.admitted,
            "rejected_duplicates": service.manager.rejected_duplicates,
            "evictions": service.manager.evictions,
        },
        "service": {
            "rng": rng_state(service._rng),
            "feedback_rng": rng_state(service.feedback._rng),
            "stats": asdict(service.stats),
        },
        "models": {
            name: {
                "rng": rng_state(model._rng),
                "decode_counts": dict(model._decode_counts),
            }
            for name, model in service.models.items()
        },
    }


def write_snapshot(service: "ICCacheService", path: str | Path,
                   wal_epoch: int = 0, sidecar: bool = True) -> Path:
    """Serialize ``service`` to ``path``, atomically.

    With ``sidecar=True`` (the default) array bytes go to a content-hash
    named ``<name>.<digest>.bin`` next to the manifest and the JSON holds
    only references.  Write order is bin first, then manifest, each via a
    sibling temp file and ``os.replace`` — and because the bin's name is a
    hash of its contents, a new image can never overwrite the bin the
    previous manifest points at (identical bytes replace harmlessly), so a
    crash at any point leaves a complete old image or a complete new one.
    Stale sidecars from earlier images are removed after the manifest
    lands.  ``sidecar=False`` writes a self-contained JSON document with
    inline base64 arrays (same layout a version-1 reader knew, minus the
    version bump).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = service_state(service, wal_epoch=wal_epoch)
    bin_name = None
    if sidecar:
        builder = SidecarBuilder()
        doc = _encode(state, builder)
        if builder.data_bytes:
            blob = builder.tobytes()
            digest = hashlib.blake2b(blob, digest_size=8).hexdigest()
            bin_name = f"{path.name}.{digest}.bin"
            doc["sidecar"] = bin_name
            bin_tmp = path.with_name(bin_name + ".tmp")
            bin_tmp.write_bytes(blob)
            os.replace(bin_tmp, path.with_name(bin_name))
    else:
        doc = _encode(state)
    payload = json.dumps(doc, separators=(",", ":"))
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload + "\n", encoding="utf-8")
    os.replace(tmp, path)
    for stale in path.parent.glob(path.name + ".*.bin"):
        if stale.name != bin_name:
            stale.unlink(missing_ok=True)
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read and decode a snapshot; validates format and version.

    Version-2 manifests referencing a sidecar resolve arrays as
    copy-on-write ``np.memmap`` views; version-1 documents (and inline
    base64 anywhere) decode exactly as before.
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path} is not an {SNAPSHOT_FORMAT} file")
    version = doc.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"snapshot version {version} unsupported "
            f"(this reader speaks {sorted(SUPPORTED_VERSIONS)})"
        )
    sidecar_name = doc.get("sidecar")
    reader = SidecarReader(path.with_name(sidecar_name)) \
        if sidecar_name else None
    return _decode(doc, reader)


def config_from_record(record: dict) -> ICCacheConfig:
    """Rebuild the nested config dataclasses from their asdict form.

    The ``index`` section defaults when absent: version-1 snapshots predate
    the index scale knobs, and the defaults reproduce their behavior.
    """
    record = dict(record)
    selector = dict(record.pop("selector"))
    selector["threshold_grid"] = tuple(selector["threshold_grid"])
    index_record = record.pop("index", None)
    return ICCacheConfig(
        selector=SelectorConfig(**selector),
        router=RouterConfig(**record.pop("router")),
        manager=ManagerConfig(**record.pop("manager")),
        index=IndexConfig(**index_record) if index_record is not None
        else IndexConfig(),
        **record,
    )


def restore_service(snapshot: dict, config: ICCacheConfig | None = None,
                    models: dict | None = None,
                    shard_fn=None) -> "ICCacheService":
    """Build a service and load ``snapshot`` into it.

    ``config`` overrides the stored one (the cache layout must match);
    ``models`` re-supplies custom model objects when the original service
    was built with some (their RNG positions are restored either way);
    ``shard_fn`` re-supplies a custom shard-assignment function for
    sharded caches.
    """
    from repro.core.service import ICCacheService

    cfg = config if config is not None else config_from_record(
        snapshot["config"]
    )
    service = ICCacheService(cfg, models=models)

    service.clock.reset(float(snapshot["clock_now"]))
    service.selector_enabled = bool(snapshot["selector_enabled"])
    service.router_enabled = bool(snapshot["router_enabled"])
    restore_cache_state(service.cache, snapshot["cache"],
                        shard_fn=shard_fn)

    sel = snapshot["selector"]
    service.selector.utility_threshold = sel["utility_threshold"]
    service.selector._requests_seen = int(sel["requests_seen"])
    service.selector._recent_scored = [
        (utility, int(tokens)) for utility, tokens in sel["recent_scored"]
    ]

    proxy = snapshot["proxy"]
    service.proxy._precision = np.ascontiguousarray(proxy["precision"])
    service.proxy._moment = np.ascontiguousarray(proxy["moment"])
    service.proxy._weights = np.ascontiguousarray(proxy["weights"])
    service.proxy.updates = int(proxy["updates"])

    router = snapshot["router"]
    stored_arms = set(router["arms"])
    live_arms = set(service.router._posteriors)
    if stored_arms != live_arms:
        raise ValueError(
            f"snapshot router arms {sorted(stored_arms)} != "
            f"configured arms {sorted(live_arms)}"
        )
    for name, arm in router["arms"].items():
        posterior = service.router._posteriors[name]
        posterior._precision = np.ascontiguousarray(arm["precision"])
        posterior._moment = np.ascontiguousarray(arm["moment"])
        posterior.pulls = int(arm["pulls"])
    set_rng_state(service.router._rng, router["rng"])
    restore_ema(service.router.load_ema, router["load_ema"])
    service.router.decisions = int(router["decisions"])
    service.router.feedback_solicitations = int(
        router["feedback_solicitations"]
    )

    manager = snapshot["manager"]
    service.manager._last_decay = float(manager["last_decay"])
    service.manager._next_id = int(manager["next_id"])
    service.manager.admitted = int(manager["admitted"])
    service.manager.rejected_duplicates = int(manager["rejected_duplicates"])
    service.manager.evictions = int(manager["evictions"])

    svc = snapshot["service"]
    set_rng_state(service._rng, svc["rng"])
    set_rng_state(service.feedback._rng, svc["feedback_rng"])
    for field, value in svc["stats"].items():
        setattr(service.stats, field, value)

    stored_models = set(snapshot["models"])
    live_models = set(service.models)
    if not stored_models <= live_models:
        raise ValueError(
            f"snapshot has state for models {sorted(stored_models)} but "
            f"only {sorted(live_models)} are configured"
        )
    for name, model_state in snapshot["models"].items():
        model = service.models[name]
        set_rng_state(model._rng, model_state["rng"])
        model._decode_counts = {
            rid: int(count)
            for rid, count in model_state["decode_counts"].items()
        }
    return service
