"""Versioned full-state snapshots of a running :class:`ICCacheService`.

The snapshot is the durable half of the persistence subsystem (the WAL in
:mod:`repro.persistence.wal` covers the tail between snapshots).  Its
defining property is *warm-restart determinism*: a service rebuilt from a
snapshot serves bit-identically to one that never stopped, which means the
format must capture more than the obvious data:

* **Examples** — full records including the per-example gain/feedback EMAs
  (section 4.3 bookkeeping) and the cache's per-id recorded byte sizes.
* **Index layout, not just membership** — the flat storage's row order is
  the index's entire add/remove history (swap-delete moves the last row
  into the hole) and is exactly what K-Means reads at retrain time, so it
  is serialized as-is; the IVF cluster blocks, centroids, churn counter,
  and training count ride along (see ``to_state`` on each index class).
* **Learned state** — router posteriors, proxy regression state, selector
  threshold adaptation, and the live ablation flags.
* **RNG stream positions** — the service, router, and feedback generators'
  bit-generator states plus every model's per-request decode counts; the
  repo's RNG discipline (per-entity seeded streams) makes these few
  numbers sufficient to resume every stochastic sequence mid-stream.

On disk a snapshot is one JSON document.  Arrays are embedded as base64 of
their raw bytes with dtype/shape/byte-order, so floats round-trip
bit-exactly; scalar floats rely on JSON's shortest-roundtrip repr, which
is also exact.  ``version`` gates compatibility: readers reject newer
majors instead of guessing.

Not captured (by design): in-flight requests parked in the pipeline
(``pipeline._pending``) — a crash loses them, like any serving system;
their ids are recorded under ``in_flight`` for operator visibility.
Custom ``models=`` or ``shard_fn=`` objects are code, not state, and must
be re-supplied to :func:`restore_service`.
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.stats import EMA
from repro.core.cache import ShardedExampleCache
from repro.core.config import (
    ICCacheConfig,
    ManagerConfig,
    RouterConfig,
    SelectorConfig,
)
from repro.core.example import Example
from repro.vectorstore.ivf import IVFIndex
from repro.vectorstore.sharded import ShardedIndex
from repro.workload.request import Request, TaskType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> persistence)
    from repro.core.service import ICCacheService

SNAPSHOT_FORMAT = "ic-cache-snapshot"
SNAPSHOT_VERSION = 1


# -- JSON-safe encoding of numpy state ------------------------------------

def encode_array(array: np.ndarray) -> dict:
    """One ndarray as a JSON-safe record, bit-exact.

    Raw bytes (base64) plus ``dtype.str`` — which includes byte order — and
    shape.  Never textual floats: ``repr`` round-trips in Python but a raw
    byte image is unambiguous across readers and obviously exact.
    """
    arr = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
    }


def decode_array(record: dict) -> np.ndarray:
    arr = np.frombuffer(base64.b64decode(record["__ndarray__"]),
                        dtype=np.dtype(record["dtype"]))
    return arr.reshape(record["shape"]).copy()


def _encode(obj):
    """Recursively convert a state structure into JSON-serializable form."""
    if isinstance(obj, np.ndarray):
        return encode_array(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, dict):
        return {key: _encode(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(value) for value in obj]
    return obj


def _decode(obj):
    """Inverse of :func:`_encode` (arrays come back as ndarrays)."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return decode_array(obj)
        return {key: _decode(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_decode(value) for value in obj]
    return obj


# -- component records ------------------------------------------------------

def ema_record(ema: EMA) -> dict:
    return {"alpha": ema.alpha, "value": ema._value, "count": ema.count}


def ema_from_record(record: dict) -> EMA:
    ema = EMA(alpha=record["alpha"])
    ema._value = record["value"]
    ema.count = int(record["count"])
    return ema


def restore_ema(ema: EMA, record: dict) -> None:
    """Overwrite an existing EMA's state in place (alpha included)."""
    ema.alpha = record["alpha"]
    ema._value = record["value"]
    ema.count = int(record["count"])


def rng_state(rng: np.random.Generator) -> dict:
    """The bit-generator state dict (plain ints, JSON-safe)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise ValueError(
            f"snapshot RNG is {state['bit_generator']!r}, this process "
            f"built {rng.bit_generator.state['bit_generator']!r}"
        )
    rng.bit_generator.state = state


def request_record(request: Request) -> dict:
    return {
        "request_id": request.request_id,
        "dataset": request.dataset,
        "task": request.task.value,
        "text": request.text,
        "latent": np.asarray(request.latent, dtype=float),
        "topic_id": request.topic_id,
        "difficulty": request.difficulty,
        "prompt_tokens": request.prompt_tokens,
        "target_output_tokens": request.target_output_tokens,
        "arrival_time": request.arrival_time,
        "metadata": request.metadata,
    }


def request_from_record(record: dict) -> Request:
    return Request(
        request_id=record["request_id"],
        dataset=record["dataset"],
        task=TaskType(record["task"]),
        text=record["text"],
        latent=np.asarray(record["latent"], dtype=float),
        topic_id=int(record["topic_id"]),
        difficulty=float(record["difficulty"]),
        prompt_tokens=int(record["prompt_tokens"]),
        target_output_tokens=int(record["target_output_tokens"]),
        arrival_time=float(record["arrival_time"]),
        metadata=dict(record["metadata"]),
    )


def example_record(example: Example) -> dict:
    return {
        "example_id": example.example_id,
        "request": request_record(example.request),
        "response_text": example.response_text,
        "embedding": np.asarray(example.embedding, dtype=float),
        "quality": example.quality,
        "source_model": example.source_model,
        "source_cost": example.source_cost,
        "created_at": example.created_at,
        "access_count": example.access_count,
        "replay_count": example.replay_count,
        "gain_ema": ema_record(example.gain_ema),
        "offload_gain": ema_record(example.offload_gain),
        "feedback_quality": ema_record(example.feedback_quality),
    }


def example_from_record(record: dict) -> Example:
    return Example(
        example_id=record["example_id"],
        request=request_from_record(record["request"]),
        response_text=record["response_text"],
        embedding=np.asarray(record["embedding"], dtype=float),
        quality=float(record["quality"]),
        source_model=record["source_model"],
        source_cost=float(record["source_cost"]),
        created_at=float(record["created_at"]),
        access_count=int(record["access_count"]),
        replay_count=int(record["replay_count"]),
        gain_ema=ema_from_record(record["gain_ema"]),
        offload_gain=ema_from_record(record["offload_gain"]),
        feedback_quality=ema_from_record(record["feedback_quality"]),
    )


def cache_state(cache) -> dict:
    """Serializable state of an ExampleCache / ShardedExampleCache."""
    return {
        "sharded": isinstance(cache, ShardedExampleCache),
        # Insertion order is preserved: dict order IS iteration order and
        # downstream passes (decay, replay ranking ties) iterate the pool.
        "examples": [example_record(ex) for ex in cache],
        "bytes_by_id": dict(cache._bytes_by_id),
        "total_bytes": cache.total_bytes,
        "index": cache._index.to_state(),
    }


def restore_cache_state(cache, state: dict, shard_fn=None) -> None:
    """Rebuild a cache's contents in place from :func:`cache_state` output.

    In place because the selector, manager, and pipeline policies all hold
    references to the live cache object — swapping internals under them is
    exactly what a warm restart needs.  ``shard_fn`` re-supplies a custom
    shard-assignment function (code, not state) for sharded layouts;
    existing keys keep their memoized assignments either way, but new adds
    would silently fall back to hash placement without it.
    """
    sharded = bool(state["sharded"])
    if sharded != isinstance(cache, ShardedExampleCache):
        raise ValueError(
            "snapshot cache layout does not match the configured one "
            f"(snapshot sharded={sharded}); check config.cache_shards"
        )
    examples = [example_from_record(rec) for rec in state["examples"]]
    cache._examples = {ex.example_id: ex for ex in examples}
    cache._bytes_by_id = {key: int(value)
                          for key, value in state["bytes_by_id"].items()}
    cache._total_bytes = int(state["total_bytes"])
    if sharded:
        cache._index = ShardedIndex.from_state(state["index"],
                                               shard_fn=shard_fn)
    else:
        cache._index = IVFIndex.from_state(state["index"])
    cache._journal = None
    cache._journal_trainings = 0


# -- the service snapshot ---------------------------------------------------

def service_state(service: "ICCacheService", wal_epoch: int = 0) -> dict:
    """Everything a warm restart needs, as one plain structure.

    ``wal_epoch`` stamps which journal generation this snapshot pairs
    with: :class:`~repro.persistence.wal.Checkpointer` bumps it every
    checkpoint, so recovery can tell a fresh WAL tail from records left
    behind by a crash *between* snapshot write and journal truncation.
    """
    router = service.router
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "wal_epoch": int(wal_epoch),
        "config": asdict(service.config),
        "clock_now": service.clock.now,
        "in_flight": sorted(service.pipeline._pending),
        "selector_enabled": service.selector_enabled,
        "router_enabled": service.router_enabled,
        "cache": cache_state(service.cache),
        "selector": {
            "utility_threshold": service.selector.utility_threshold,
            "requests_seen": service.selector._requests_seen,
            "recent_scored": [[u, t] for u, t in service.selector._recent_scored],
        },
        "proxy": {
            "precision": service.proxy._precision,
            "moment": service.proxy._moment,
            "weights": service.proxy._weights,
            "updates": service.proxy.updates,
        },
        "router": {
            "rng": rng_state(router._rng),
            "load_ema": ema_record(router.load_ema),
            "decisions": router.decisions,
            "feedback_solicitations": router.feedback_solicitations,
            "arms": {
                name: {
                    "precision": posterior._precision,
                    "moment": posterior._moment,
                    "pulls": posterior.pulls,
                }
                for name, posterior in router._posteriors.items()
            },
        },
        "manager": {
            "last_decay": service.manager._last_decay,
            "next_id": service.manager._next_id,
            "admitted": service.manager.admitted,
            "rejected_duplicates": service.manager.rejected_duplicates,
            "evictions": service.manager.evictions,
        },
        "service": {
            "rng": rng_state(service._rng),
            "feedback_rng": rng_state(service.feedback._rng),
            "stats": asdict(service.stats),
        },
        "models": {
            name: {
                "rng": rng_state(model._rng),
                "decode_counts": dict(model._decode_counts),
            }
            for name, model in service.models.items()
        },
    }


def write_snapshot(service: "ICCacheService", path: str | Path,
                   wal_epoch: int = 0) -> Path:
    """Serialize ``service`` to ``path`` (one JSON document), atomically.

    The document is written to a sibling temp file and ``os.replace``d
    into place, so a crash mid-write can never destroy the previous valid
    snapshot — readers see either the old image or the new one, complete.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(_encode(service_state(service,
                                               wal_epoch=wal_epoch)),
                         separators=(",", ":"))
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read and decode a snapshot; validates format and version."""
    snapshot = _decode(json.loads(Path(path).read_text(encoding="utf-8")))
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path} is not an {SNAPSHOT_FORMAT} file")
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {version} unsupported "
            f"(this reader speaks {SNAPSHOT_VERSION})"
        )
    return snapshot


def config_from_record(record: dict) -> ICCacheConfig:
    """Rebuild the nested config dataclasses from their asdict form."""
    record = dict(record)
    selector = dict(record.pop("selector"))
    selector["threshold_grid"] = tuple(selector["threshold_grid"])
    return ICCacheConfig(
        selector=SelectorConfig(**selector),
        router=RouterConfig(**record.pop("router")),
        manager=ManagerConfig(**record.pop("manager")),
        **record,
    )


def restore_service(snapshot: dict, config: ICCacheConfig | None = None,
                    models: dict | None = None,
                    shard_fn=None) -> "ICCacheService":
    """Build a service and load ``snapshot`` into it.

    ``config`` overrides the stored one (the cache layout must match);
    ``models`` re-supplies custom model objects when the original service
    was built with some (their RNG positions are restored either way);
    ``shard_fn`` re-supplies a custom shard-assignment function for
    sharded caches.
    """
    from repro.core.service import ICCacheService

    cfg = config if config is not None else config_from_record(
        snapshot["config"]
    )
    service = ICCacheService(cfg, models=models)

    service.clock.reset(float(snapshot["clock_now"]))
    service.selector_enabled = bool(snapshot["selector_enabled"])
    service.router_enabled = bool(snapshot["router_enabled"])
    restore_cache_state(service.cache, snapshot["cache"],
                        shard_fn=shard_fn)

    sel = snapshot["selector"]
    service.selector.utility_threshold = sel["utility_threshold"]
    service.selector._requests_seen = int(sel["requests_seen"])
    service.selector._recent_scored = [
        (utility, int(tokens)) for utility, tokens in sel["recent_scored"]
    ]

    proxy = snapshot["proxy"]
    service.proxy._precision = np.ascontiguousarray(proxy["precision"])
    service.proxy._moment = np.ascontiguousarray(proxy["moment"])
    service.proxy._weights = np.ascontiguousarray(proxy["weights"])
    service.proxy.updates = int(proxy["updates"])

    router = snapshot["router"]
    stored_arms = set(router["arms"])
    live_arms = set(service.router._posteriors)
    if stored_arms != live_arms:
        raise ValueError(
            f"snapshot router arms {sorted(stored_arms)} != "
            f"configured arms {sorted(live_arms)}"
        )
    for name, arm in router["arms"].items():
        posterior = service.router._posteriors[name]
        posterior._precision = np.ascontiguousarray(arm["precision"])
        posterior._moment = np.ascontiguousarray(arm["moment"])
        posterior.pulls = int(arm["pulls"])
    set_rng_state(service.router._rng, router["rng"])
    restore_ema(service.router.load_ema, router["load_ema"])
    service.router.decisions = int(router["decisions"])
    service.router.feedback_solicitations = int(
        router["feedback_solicitations"]
    )

    manager = snapshot["manager"]
    service.manager._last_decay = float(manager["last_decay"])
    service.manager._next_id = int(manager["next_id"])
    service.manager.admitted = int(manager["admitted"])
    service.manager.rejected_duplicates = int(manager["rejected_duplicates"])
    service.manager.evictions = int(manager["evictions"])

    svc = snapshot["service"]
    set_rng_state(service._rng, svc["rng"])
    set_rng_state(service.feedback._rng, svc["feedback_rng"])
    for field, value in svc["stats"].items():
        setattr(service.stats, field, value)

    stored_models = set(snapshot["models"])
    live_models = set(service.models)
    if not stored_models <= live_models:
        raise ValueError(
            f"snapshot has state for models {sorted(stored_models)} but "
            f"only {sorted(live_models)} are configured"
        )
    for name, model_state in snapshot["models"].items():
        model = service.models[name]
        set_rng_state(model._rng, model_state["rng"])
        model._decode_counts = {
            rid: int(count)
            for rid, count in model_state["decode_counts"].items()
        }
    return service
