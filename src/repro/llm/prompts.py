"""Prompt templates (paper appendix A.1).

The paper prompts generative models with a fixed system template; with
IC-Cache the selected examples are woven into the template of Fig. 24
between two copies of the instruction.  The simulation's quality model does
not read prompt *content*, but the templates matter for two real code paths:

* token accounting — the latency model charges for every template token;
* cache sizing — examples are stored and shipped as plaintext.

The autorater template (Fig. 25) is included for completeness and used by
the judge's documentation/tests.
"""

from __future__ import annotations

from repro.utils.tokens import count_tokens

SYSTEM_PROMPT_WITHOUT_IC = """\
[System]
You are a helpful AI Assistant that follows users' instructions carefully.
Write a response that appropriately completes the request. Provide necessary
details or explanations if that helps to exceed the user's expectations.
Below is an instruction that describes a task:
{instruction}
"""

SYSTEM_PROMPT_WITH_IC = """\
[System]
You are a helpful AI Assistant that follows users' instructions carefully.
Write a response that appropriately completes the request. Provide necessary
details or explanations if that helps to exceed the user's expectations.
Below is an instruction that describes a task:
{instruction}

Below are examples of detailed instructions and responses. When a user gives
you an instruction, consider the following:
**Relevance: Do the examples directly relate to the user's specific task or
question? If not, focus on completing the user's request without relying on
the examples.
**Quality: Do the examples demonstrate excellent explanations, detail, and
clarity? If so, you may follow their format and style to improve your own
response.
**Helpfulness: Do the examples provide helpful information that is relevant
to the user's instruction? If so, you may use the information in the examples
to help you complete the user's instruction.

{examples}

Below is an instruction that describes a task. Write a response that
appropriately completes the request. Provide necessary details or
explanations if that helps to exceed the user's expectation. Remember: Your
primary goal is to understand the user's instruction and complete the task
with informative detail. The examples are resources to guide you, not strict
templates to follow. However, you can refer to and follow the examples if
the user's instruction is very similar to the examples.
Below is an instruction that describes a task again:
{instruction}
"""

AUTORATER_SYSTEM_PROMPT = """\
[System]
Please act as an impartial judge and evaluate the overall quality of the
responses provided by two AI assistants to the user question displayed below.
You should choose the assistant that follows the user's instructions and
answers the user's question better. Avoid any position biases and ensure that
the order in which the responses were presented does not influence your
decision. Be as objective as possible.
You should format as follows:
[Rationale]: Placeholder for the short rationale of the score.
[Score]: Placeholder for the score. This should be -3, -2, -1, 0, 1, 2, or 3.
"""

EXAMPLE_BLOCK_TEMPLATE = "### Instruction:\n{request}\n### Response:\n{response}\n"


def render_example_block(request_text: str, response_text: str) -> str:
    """One in-context example rendered for the Fig. 24 template."""
    return EXAMPLE_BLOCK_TEMPLATE.format(request=request_text,
                                         response=response_text)


def build_prompt(instruction: str,
                 examples: list[tuple[str, str]] | None = None) -> str:
    """The full serving prompt, with or without in-context examples."""
    if not examples:
        return SYSTEM_PROMPT_WITHOUT_IC.format(instruction=instruction)
    blocks = "\n".join(
        render_example_block(req, resp) for req, resp in examples
    )
    return SYSTEM_PROMPT_WITH_IC.format(instruction=instruction,
                                        examples=blocks)


def prompt_tokens(instruction: str,
                  examples: list[tuple[str, str]] | None = None) -> int:
    """Token count of the fully rendered prompt (for latency accounting)."""
    return count_tokens(build_prompt(instruction, examples))


def template_overhead_tokens() -> int:
    """Tokens the IC template adds beyond instruction + example text.

    This is the constant the latency model charges per augmented request on
    top of the raw example tokens.
    """
    bare = prompt_tokens("x")
    augmented = prompt_tokens("x", [("y", "z")])
    raw = count_tokens("y") + count_tokens("z")
    return max(0, augmented - bare - raw)
