"""Simulated LLM: spec, latency model, and generation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llm.icl import ExampleView, ICLBoostModel
from repro.llm.quality import QualityModel
from repro.utils.rng import make_rng, spawn_rng, stable_hash
from repro.workload.request import Request


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one servable model.

    Latency model: TTFT = ttft_base_s + prefill_s_per_token * prompt_tokens;
    decode time = tbt_s per output token.  ``gpus_per_replica`` and
    ``batch_slots`` size the serving simulator's replicas; ``cost_per_1k_tokens``
    feeds the router's cost bias and the replay-gain formula.
    """

    name: str
    family: str
    params_b: float
    capability: float          # in (0, 1]; drives base response quality
    gpus_per_replica: int
    ttft_base_s: float
    prefill_s_per_token: float
    tbt_s: float
    cost_per_1k_tokens: float
    max_context_tokens: int = 8192
    batch_slots: int = 8       # concurrent requests one replica sustains
    verbosity: float = 1.0     # output-length multiplier (R1 chains >> 1)

    def __post_init__(self) -> None:
        if not 0.0 < self.capability <= 1.0:
            raise ValueError(f"{self.name}: capability must be in (0, 1]")
        if self.gpus_per_replica < 1 or self.batch_slots < 1:
            raise ValueError(f"{self.name}: replica sizing must be positive")
        if min(self.ttft_base_s, self.prefill_s_per_token, self.tbt_s) < 0:
            raise ValueError(f"{self.name}: latency constants must be >= 0")

    def ttft(self, prompt_tokens: int) -> float:
        """Time-to-first-token for a prompt of the given length."""
        return self.ttft_base_s + self.prefill_s_per_token * max(0, prompt_tokens)

    def decode_time(self, output_tokens: int) -> float:
        """Decoding time for the given number of output tokens."""
        return self.tbt_s * max(0, output_tokens)

    def service_time(self, prompt_tokens: int, output_tokens: int) -> float:
        """Contention-free end-to-end generation time."""
        return self.ttft(prompt_tokens) + self.decode_time(output_tokens)


@dataclass
class GenerationResult:
    """Everything observable about one generation."""

    model_name: str
    quality: float
    prompt_tokens: int
    output_tokens: int
    ttft_s: float
    decode_s: float
    icl_boost: float
    n_examples: int
    cost: float
    text: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.ttft_s + self.decode_s

    @property
    def tbt_s(self) -> float:
        return self.decode_s / self.output_tokens if self.output_tokens else 0.0


# Prepending an example adds its request+response tokens plus template glue.
EXAMPLE_TEMPLATE_OVERHEAD_TOKENS = 12
# Guided by high-quality examples, responses come out slightly tighter
# (Fig. 18: 3% lower zero-load latency for 2B + IC via shorter decodes).
ICL_DECODE_SHRINK = 0.93


class SimulatedLLM:
    """A model that generates responses with latent quality and real latency.

    Deterministic per (model, request, decode_index): replaying the same
    request yields a *different* sample each call (token-sampling variance,
    which example replay exploits) but the sequence of samples is reproducible.
    """

    def __init__(self, spec: ModelSpec,
                 quality_model: QualityModel | None = None,
                 icl_model: ICLBoostModel | None = None,
                 seed: int = 0) -> None:
        self.spec = spec
        self.quality_model = quality_model or QualityModel()
        self.icl_model = icl_model or ICLBoostModel()
        self._rng = make_rng(stable_hash("llm", spec.name, seed))
        self._decode_counts: dict[str, int] = {}
        # base_quality is a pure function of (model, request id, difficulty)
        # but gets asked several times per serve (router features, generate,
        # learning); memoize the float, bounded so a long-lived service
        # cannot grow it without limit.
        self._base_quality_memo: dict[tuple[str, float], float] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    def decode_count(self, request_id: str) -> int:
        """How many times this model has generated for ``request_id``.

        The decode RNG stream is keyed per (model, request, decode index),
        so this position is durable state: persistence snapshots it and WAL
        ``replay_rewrite`` records carry it, letting a restored service
        resume every request's sample sequence exactly where it stopped.
        """
        return self._decode_counts.get(request_id, 0)

    def base_quality(self, request: Request) -> float:
        """Deterministic quality this model achieves without examples.

        Capability/difficulty curve plus a per-(model, request) aptitude term
        (see :data:`repro.llm.quality.APTITUDE_STD`): the same request always
        gets the same aptitude from the same model.
        """
        from repro.llm.quality import APTITUDE_STD

        memo_key = (request.request_id, request.difficulty)
        memo = self._base_quality_memo.get(memo_key)
        if memo is not None:
            return memo
        base = self.quality_model.base_quality(
            self.spec.capability, request.difficulty
        )
        aptitude_rng = make_rng(
            stable_hash("aptitude", self.spec.name, request.request_id)
        )
        base += float(aptitude_rng.normal(0.0, APTITUDE_STD))
        result = float(np.clip(base, 0.0, 1.0))
        if len(self._base_quality_memo) >= 8192:
            self._base_quality_memo.clear()
        self._base_quality_memo[memo_key] = result
        return result

    def prompt_tokens_with_examples(self, request: Request,
                                    examples: list[ExampleView]) -> int:
        tokens = request.prompt_tokens
        for example in examples:
            tokens += example.tokens + EXAMPLE_TEMPLATE_OVERHEAD_TOKENS
        return min(tokens, self.spec.max_context_tokens)

    def generate(self, request: Request,
                 examples: list[ExampleView] | None = None) -> GenerationResult:
        """Produce one response; repeated calls re-sample decode noise."""
        examples = examples or []
        count = self._decode_counts.get(request.request_id, 0)
        self._decode_counts[request.request_id] = count + 1
        rng = spawn_rng(
            make_rng(stable_hash("gen", self.spec.name, request.request_id)),
            "decode", count,
        )

        base = self.base_quality(request)
        boost = self.icl_model.boost(request.latent, examples, base)
        quality = self.quality_model.sample_quality(base, boost, rng)

        prompt_tokens = self.prompt_tokens_with_examples(request, examples)
        output_tokens = max(2, int(round(
            request.target_output_tokens * self.spec.verbosity
            * (ICL_DECODE_SHRINK if examples else 1.0)
            * float(rng.lognormal(0.0, 0.08))
        )))
        ttft = self.spec.ttft(prompt_tokens)
        decode = self.spec.decode_time(output_tokens)
        cost = (prompt_tokens + output_tokens) / 1000.0 * self.spec.cost_per_1k_tokens
        text = (
            f"[{self.spec.name} q={quality:.3f}] response to "
            f"{request.request_id}: " + request.text[:120]
        )
        return GenerationResult(
            model_name=self.spec.name,
            quality=quality,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            ttft_s=ttft,
            decode_s=decode,
            icl_boost=boost,
            n_examples=len(examples),
            cost=cost,
            text=text,
        )
