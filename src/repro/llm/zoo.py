"""The model zoo: specs calibrated against the paper's measurements.

Latency constants come from the paper's own numbers:

* Fig. 1(a): Gemini-Flash TTFT 0.497s / TBT 5ms vs Gemini-Pro 0.755s / 15ms;
  Pro scores +0.39 on the seven-point scale (65% win rate).
* Fig. 1(b): Qwen2.5-7B TTFT 18ms / TBT 6.62ms on 1 GPU vs DeepSeek-R1
  TTFT 3.14s / TBT 121.4ms on 16 A100s.
* Fig. 4(b): Qwen-3B TTFT 24ms (code) / 290ms (math) vs Qwen-32B 92ms / 990ms.
* Fig. 18: Gemma-2-2B zero-load ~2.66s vs 27B ~8.94s; 27B needs ~7x the
  GPUs per unit throughput.

Capabilities are set so the autorater reproduces the paper's win rates and
average scores for each pair (large beats small by roughly 0.3-0.5 base
quality at median difficulty).
"""

from __future__ import annotations

from repro.llm.model import ModelSpec, SimulatedLLM

MODEL_SPECS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        ModelSpec(
            name="gemini-1.5-flash", family="gemini", params_b=30.0,
            capability=0.72, gpus_per_replica=4,
            ttft_base_s=0.42, prefill_s_per_token=8e-4, tbt_s=0.005,
            cost_per_1k_tokens=0.075, max_context_tokens=32768, batch_slots=16,
        ),
        ModelSpec(
            name="gemini-1.5-pro", family="gemini", params_b=200.0,
            capability=0.82, gpus_per_replica=16,
            ttft_base_s=0.62, prefill_s_per_token=1.3e-3, tbt_s=0.015,
            cost_per_1k_tokens=1.25, max_context_tokens=32768, batch_slots=16,
        ),
        ModelSpec(
            name="gemma-2-2b", family="gemma", params_b=2.0,
            capability=0.62, gpus_per_replica=1,
            ttft_base_s=0.02, prefill_s_per_token=2.5e-4, tbt_s=0.009,
            cost_per_1k_tokens=0.02, max_context_tokens=8192, batch_slots=6,
        ),
        ModelSpec(
            name="gemma-2-27b", family="gemma", params_b=27.0,
            capability=0.78, gpus_per_replica=8,
            # Large models batch aggressively under vLLM; 16 concurrent
            # slots per 8-GPU replica lands the Fig. 18 GPU/QPS ratio near
            # the paper's ~7x while one replica still saturates below the
            # Fig. 12 trace's offered load.
            ttft_base_s=0.10, prefill_s_per_token=1.2e-3, tbt_s=0.033,
            cost_per_1k_tokens=0.27, max_context_tokens=8192, batch_slots=16,
        ),
        ModelSpec(
            # Mid-tier for the section-8 multi-model sweet spots.
            name="gemma-2-9b", family="gemma", params_b=9.0,
            capability=0.71, gpus_per_replica=2,
            ttft_base_s=0.05, prefill_s_per_token=6e-4, tbt_s=0.018,
            cost_per_1k_tokens=0.09, max_context_tokens=8192, batch_slots=8,
        ),
        ModelSpec(
            name="qwen2.5-3b", family="qwen", params_b=3.0,
            capability=0.60, gpus_per_replica=1,
            ttft_base_s=0.012, prefill_s_per_token=8e-5, tbt_s=0.0075,
            cost_per_1k_tokens=0.03, max_context_tokens=32768, batch_slots=8,
        ),
        ModelSpec(
            name="qwen2.5-7b", family="qwen", params_b=7.0,
            capability=0.66, gpus_per_replica=1,
            ttft_base_s=0.012, prefill_s_per_token=2.6e-4, tbt_s=0.00662,
            cost_per_1k_tokens=0.05, max_context_tokens=32768, batch_slots=8,
        ),
        ModelSpec(
            name="qwen2.5-32b", family="qwen", params_b=32.0,
            capability=0.79, gpus_per_replica=4,
            ttft_base_s=0.04, prefill_s_per_token=3.3e-4, tbt_s=0.022,
            cost_per_1k_tokens=0.40, max_context_tokens=32768, batch_slots=6,
        ),
        ModelSpec(
            name="deepseek-r1", family="deepseek", params_b=671.0,
            capability=0.88, gpus_per_replica=16,
            ttft_base_s=2.80, prefill_s_per_token=3.4e-3, tbt_s=0.1214,
            cost_per_1k_tokens=2.00, max_context_tokens=65536, batch_slots=4,
            verbosity=2.5,  # reasoning chains inflate decode length
        ),
        ModelSpec(
            name="phi-3-mini", family="phi", params_b=3.8,
            capability=0.58, gpus_per_replica=1,
            ttft_base_s=0.015, prefill_s_per_token=3e-4, tbt_s=0.008,
            cost_per_1k_tokens=0.02, max_context_tokens=4096, batch_slots=8,
        ),
        ModelSpec(
            name="phi-3-medium", family="phi", params_b=14.0,
            capability=0.71, gpus_per_replica=2,
            ttft_base_s=0.05, prefill_s_per_token=8e-4, tbt_s=0.018,
            cost_per_1k_tokens=0.14, max_context_tokens=4096, batch_slots=6,
        ),
    ]
}

# (small, large) pairs evaluated in the paper.
MODEL_PAIRS: dict[str, tuple[str, str]] = {
    "gemini": ("gemini-1.5-flash", "gemini-1.5-pro"),
    "gemma": ("gemma-2-2b", "gemma-2-27b"),
    "qwen": ("qwen2.5-3b", "qwen2.5-32b"),
    "qwen_deepseek": ("qwen2.5-7b", "deepseek-r1"),
    "phi": ("phi-3-mini", "phi-3-medium"),
}


def get_model(name: str, seed: int = 0) -> SimulatedLLM:
    """Instantiate a simulated model from the zoo."""
    try:
        spec = MODEL_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_SPECS))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None
    return SimulatedLLM(spec, seed=seed)


def get_model_pair(family: str, seed: int = 0) -> tuple[SimulatedLLM, SimulatedLLM]:
    """The (small, large) pair the paper evaluates for ``family``."""
    try:
        small_name, large_name = MODEL_PAIRS[family]
    except KeyError:
        known = ", ".join(sorted(MODEL_PAIRS))
        raise KeyError(f"unknown pair {family!r}; known: {known}") from None
    return get_model(small_name, seed=seed), get_model(large_name, seed=seed)
