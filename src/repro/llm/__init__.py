"""Simulated LLM substrate.

The paper's evaluation observes models through exactly three lenses:

1. *response quality* as scored by an LLM autorater (win rates, avg scores),
2. *latency* (TTFT = prefill over the prompt, TBT per decoded token), and
3. *resource footprint* (GPUs per replica, cost per token).

:class:`SimulatedLLM` models those three observables and nothing else.  Its
capability/latency constants are calibrated against the paper's own
measurements (Fig. 1, Fig. 4b, Fig. 18); :mod:`repro.llm.quality` documents
the quality model and :mod:`repro.llm.icl` the in-context-learning boost.
"""

from repro.llm.model import GenerationResult, ModelSpec, SimulatedLLM
from repro.llm.quality import QualityModel
from repro.llm.icl import ICLBoostModel, example_utility
from repro.llm.zoo import MODEL_SPECS, get_model, get_model_pair, MODEL_PAIRS

__all__ = [
    "GenerationResult",
    "ModelSpec",
    "SimulatedLLM",
    "QualityModel",
    "ICLBoostModel",
    "example_utility",
    "MODEL_SPECS",
    "MODEL_PAIRS",
    "get_model",
    "get_model_pair",
]
