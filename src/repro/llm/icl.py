"""The in-context-learning (ICL) boost model.

This encodes the paper's central empirical claims about prepending
historical request-response pairs (section 2.3, Fig. 4):

* a *relevant* example whose stored response is *better than what the target
  model would produce alone* transfers knowledge — quality rises;
* irrelevant ("random") examples distract — quality falls;
* gains saturate: adding ever more examples yields diminishing returns
  (section 4.1, "including too many yields diminishing quality improvements");
* an augmented small model can slightly exceed the large model (win rates of
  50-60% in Fig. 13/16/17) but not by an unbounded margin — the boost is
  capped just above the best example's own quality.

Per-example contribution:

    headroom     = max(0, example_quality - base_quality)
    gated_rel    = smoothstep(relevance between REL_GATE and REL_FULL)
    contribution = gated_rel * headroom

Total boost:

    boost = min(cap, MAX_BOOST * (1 - exp(-sum(contributions) / SATURATION)))
            - DISTRACTION_PENALTY * (# examples with relevance < DISTRACT_GATE)

where ``cap`` keeps the final quality at most ``EXCEED_MARGIN`` above the
best relevant example (imitation can out-perform the teacher a little, not a
lot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.similarity import cosine_similarity

# Calibrated constants (see module docstring for roles).
REL_GATE = 0.55            # below this, an example cannot help
REL_FULL = 0.95            # above this, relevance gating is fully open
DISTRACT_GATE = 0.30       # below this, an example actively hurts
DISTRACTION_PENALTY = 0.03 # quality loss per distracting example
MAX_BOOST = 0.40           # asymptotic ceiling of the ICL gain
SATURATION = 0.18          # how quickly contributions saturate
EXCEED_MARGIN = 0.01       # how far imitation may exceed the teacher example
TRANSFER_EFFICIENCY = 0.65 # fraction of teacher headroom that transfers


@dataclass(frozen=True)
class ExampleView:
    """The minimal view of a cached example the ICL model needs.

    ``quality`` is the latent quality of the example's stored response;
    ``tokens`` its prompt-length contribution (used by the latency model,
    carried here so one object serves both).
    """

    latent: np.ndarray
    quality: float
    tokens: int


def _smoothstep(x: float) -> float:
    """C1-smooth ramp from 0 to 1 over [0, 1]."""
    t = min(1.0, max(0.0, x))
    return t * t * (3.0 - 2.0 * t)


def example_utility(request_latent: np.ndarray, example: ExampleView,
                    base_quality: float) -> float:
    """Ground-truth helpfulness of one example for one request+model.

    This is the quantity the paper's proxy model *estimates* (section 4.1);
    the simulation also uses it directly to compute the realized boost.
    Negative values mean the example distracts.
    """
    relevance = cosine_similarity(request_latent, example.latent)
    if relevance < DISTRACT_GATE:
        return -DISTRACTION_PENALTY
    gate = _smoothstep((relevance - REL_GATE) / (REL_FULL - REL_GATE))
    headroom = max(0.0, example.quality - base_quality)
    return gate * headroom


class ICLBoostModel:
    """Aggregates per-example utilities into the realized quality boost."""

    def __init__(self, max_boost: float = MAX_BOOST,
                 saturation: float = SATURATION,
                 exceed_margin: float = EXCEED_MARGIN) -> None:
        if max_boost < 0 or saturation <= 0:
            raise ValueError("max_boost must be >= 0 and saturation > 0")
        self.max_boost = max_boost
        self.saturation = saturation
        self.exceed_margin = exceed_margin

    def boost(self, request_latent: np.ndarray, examples: list[ExampleView],
              base_quality: float) -> float:
        """Quality delta from prepending ``examples`` (may be negative)."""
        if not examples:
            return 0.0
        positive_sum = 0.0
        distraction = 0.0
        best_teacher = 0.0
        # Inlined :func:`example_utility` with the request-latent norm hoisted
        # out of the loop and one cosine per example instead of two — the
        # arithmetic (and every float result) is unchanged.
        q = np.asarray(request_latent, dtype=float)
        qnorm = np.linalg.norm(q)
        for example in examples:
            denom = float(qnorm * np.linalg.norm(example.latent))
            if denom < 1e-12:
                relevance = 0.0
            else:
                relevance = float(np.dot(q, example.latent) / denom)
                relevance = max(-1.0, min(1.0, relevance))
            if relevance < DISTRACT_GATE:
                distraction += DISTRACTION_PENALTY
            else:
                gate = _smoothstep(
                    (relevance - REL_GATE) / (REL_FULL - REL_GATE)
                )
                positive_sum += gate * max(0.0, example.quality - base_quality)
                if relevance >= REL_GATE:
                    best_teacher = max(best_teacher, example.quality)

        gain = self.max_boost * (1.0 - np.exp(-positive_sum / self.saturation))
        # Imitation cap: the augmented model approaches (and may slightly
        # exceed) the best relevant teacher example, but cannot leapfrog it.
        if best_teacher > 0.0:
            cap = max(
                0.0,
                TRANSFER_EFFICIENCY * (best_teacher - base_quality)
                + self.exceed_margin,
            )
            gain = min(gain, cap)
        else:
            gain = 0.0
        return float(gain - distraction)
