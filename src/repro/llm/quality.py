"""The latent response-quality model.

Every generation produces a scalar quality in [0, 1]:

    quality = clip( base(capability, difficulty) + icl_boost + decode_noise )

``base`` captures the paper's Fig. 1 observation — larger models answer
harder requests better — via a difficulty penalty that grows as capability
shrinks:

    base = capability - difficulty * (PENALTY_CEILING - capability)

With PENALTY_CEILING = 1.35, a capability-0.80 model loses 0.55 * difficulty
while a capability-0.55 model loses 0.80 * difficulty, so the quality gap
between model sizes widens on hard requests and nearly closes on easy ones
(exactly the regime in which offloading is safe).

``decode_noise`` models token-sampling stochasticity.  Its magnitude (0.08)
makes repeated generations of the same request visibly heterogeneous, which
is the variance the Example Manager's replay mechanism harvests (section 4.3,
"recent LLM advances reveal large variance in response quality").
"""

from __future__ import annotations

import numpy as np

# Calibrated constants — shared by every experiment.
PENALTY_CEILING = 1.35   # see module docstring
DECODE_NOISE_STD = 0.08  # token-sampling variance in quality units

# Per-(model, request) aptitude: different models are good at different
# prompts, independent of size.  This is what lets a small model outright win
# a sizable minority of comparisons even while losing on average — the paper's
# win rates (e.g. Gemma-2-2B at ~41% on MS MARCO, Table 2) are impossible
# without it.  Deterministic per (model, request), so repeated generations of
# the same request share the same aptitude but differ in decode noise.
APTITUDE_STD = 0.12


class QualityModel:
    """Maps (capability, difficulty, icl boost) to response quality."""

    def __init__(self, penalty_ceiling: float = PENALTY_CEILING,
                 noise_std: float = DECODE_NOISE_STD) -> None:
        if penalty_ceiling <= 1.0:
            raise ValueError(
                f"penalty_ceiling must exceed 1.0 so weaker models are "
                f"penalized more, got {penalty_ceiling}"
            )
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.penalty_ceiling = penalty_ceiling
        self.noise_std = noise_std

    def base_quality(self, capability: float, difficulty: float) -> float:
        """Deterministic quality before ICL boost and decode noise."""
        if not 0.0 < capability <= 1.0:
            raise ValueError(f"capability must be in (0, 1], got {capability}")
        if not 0.0 <= difficulty <= 1.0:
            raise ValueError(f"difficulty must be in [0, 1], got {difficulty}")
        penalty = difficulty * (self.penalty_ceiling - capability)
        return float(np.clip(capability - penalty, 0.0, 1.0))

    def sample_quality(self, base: float, icl_boost: float,
                       rng: np.random.Generator) -> float:
        """One stochastic generation's quality around a precomputed base.

        ``base`` already includes the model's per-request aptitude (see
        :data:`APTITUDE_STD`); this adds the ICL boost and decode noise.
        """
        noise = rng.normal(0.0, self.noise_std) if self.noise_std > 0 else 0.0
        return float(np.clip(base + icl_boost + noise, 0.0, 1.0))
