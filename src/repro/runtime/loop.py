"""The deterministic discrete-event loop.

This is the scheduling core extracted from the serving simulator: a binary
heap of typed :class:`Event`\\ s ordered by ``(time, seq)``, where ``seq`` is
a monotonic insertion counter.  The tie-break rule is the determinism
contract of the whole serving layer — two events at the same simulated
instant always dispatch in the order they were scheduled, never in payload
or hash order, so seeded runs are bit-identical across processes and
platforms (see ``tests/test_golden_serve_paths.py``).

The loop itself knows nothing about clusters, batching, or autoscaling;
:mod:`repro.runtime.sources` provides the pluggable event producers and
:class:`repro.serving.cluster.ClusterSimulator` composes them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence: a kind tag plus an opaque payload.

    ``kind`` selects the handler registered via :meth:`EventLoop.on`;
    ``payload`` is whatever that handler needs (a request, a batch
    generation stamp, ``None`` for bare ticks).  Events are immutable so a
    handler can reschedule one safely.
    """

    time: float
    kind: str
    payload: Any = None


class EventLoop:
    """A deterministic discrete-event scheduler.

    * :meth:`on` registers exactly one handler per event kind (duplicate
      registration is an error — silent override would make composition
      order-dependent in a way no test could pin).
    * :meth:`schedule` enqueues an event at a simulated time >= ``now``.
    * :meth:`run` pops events in ``(time, seq)`` order until the heap is
      empty, advancing :attr:`now` monotonically.

    Handlers receive the :class:`Event` and may schedule further events
    (that is how service-completion and batch-timeout chains work).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"loop cannot start at negative time: {start}")
        self.now = float(start)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._handlers: dict[str, Callable[[Event], None]] = {}
        self.scheduled = 0
        self.processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register the handler for ``kind`` events (one per kind)."""
        if kind in self._handlers:
            raise ValueError(f"handler for event kind {kind!r} already registered")
        self._handlers[kind] = handler

    def handles(self, kind: str) -> bool:
        return kind in self._handlers

    def handler(self, kind: str) -> Callable[[Event], None] | None:
        """The registered handler for ``kind``, or ``None``."""
        return self._handlers.get(kind)

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Enqueue an event; scheduling into the past is an error."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule {kind!r} at {time} before now={self.now}"
            )
        event = Event(float(time), kind, payload)
        heapq.heappush(self._heap, (event.time, next(self._seq), event))
        self.scheduled += 1
        return event

    def step(self) -> Event | None:
        """Dispatch the single next event; returns it, or None when empty."""
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        try:
            handler = self._handlers[event.kind]
        except KeyError:
            known = ", ".join(sorted(self._handlers)) or "<none>"
            raise KeyError(
                f"no handler for event kind {event.kind!r}; registered: {known}"
            ) from None
        handler(event)
        self.processed += 1
        return event

    def run(self) -> int:
        """Dispatch until the heap drains; returns events processed by
        *this call* (:attr:`processed` keeps the loop-lifetime total)."""
        start = self.processed
        while self.step() is not None:
            pass
        return self.processed - start

    def run_until(self, until: float) -> int:
        """Dispatch events *strictly before* ``until``, then advance to it.

        The incremental counterpart of :meth:`run`, for callers that feed
        events in from outside the loop (the serving gateway's live
        sessions): everything scheduled before ``until`` fires — including
        cascades the handlers schedule inside the window — events at
        exactly ``until`` stay queued, and :attr:`now` lands on ``until``.

        The strict ``<`` is deliberate and is the cross-path determinism
        contract: a batch run pre-schedules its arrivals, so an arrival at
        time ``t`` carries a lower insertion seq than any completion
        scheduled *during* the run at the same ``t`` and fires first.  An
        incremental caller injecting that arrival by hand reproduces the
        same order only if ``run_until(t)`` leaves the completion at ``t``
        in the heap for the next advance.  Returns events processed by
        this call.
        """
        if until < self.now:
            raise ValueError(
                f"cannot run until {until} before now={self.now}"
            )
        start = self.processed
        while self._heap and self._heap[0][0] < until:
            self.step()
        self.now = float(until)
        return self.processed - start
