"""Pluggable event sources for the serving runtime.

Each source owns one concern of an online serving run and composes with the
others on a shared :class:`~repro.runtime.loop.EventLoop`:

* :class:`TraceArrivalSource` — replays a timestamped arrival sequence
  (closed-loop trace replay or the open-loop Poisson/diurnal processes of
  :mod:`repro.workload.trace`), routing each request per-request or handing
  it to a :class:`BatchFlushSource`.
* :class:`BatchFlushSource` — drives a
  :class:`~repro.serving.engine.RequestBatcher` with the event clock: size
  flushes happen inline, timeout flushes are scheduled events carrying a
  generation stamp so stale timers no-op.
* :class:`AutoscalerTickSource` — the paper's section-4.2 control loop made
  live: on a fixed cadence it feeds the router's bias signal and the
  cluster's utilization to a :class:`~repro.serving.autoscaler.BiasAutoscaler`
  and *applies* the resulting :class:`ScalingDecision` to the deployment,
  clamped to ``ClusterConfig.gpu_budget``.
* :class:`MaintenanceTickSource` — periodic online cache maintenance
  (decay/evict/replay) through ``ICCacheService.run_maintenance``, so the
  section-4.3 lifecycle runs *during* serving instead of strictly offline.
* :class:`CheckpointTickSource` — periodic durable-state checkpoints
  through a :class:`~repro.persistence.wal.Checkpointer`, so crash
  recovery (snapshot + WAL, ``docs/PERSISTENCE.md``) bounds its data loss
  to one tick of serving even in live cluster scenarios.

Sources read live state at event time, never snapshots taken at
construction — benchmarks toggle ``service.router_enabled`` and friends
mid-run, and the golden-path tests pin that those toggles take effect on
the next event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Protocol, runtime_checkable

from repro.runtime.loop import Event, EventLoop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> runtime)
    from repro.serving.autoscaler import BiasAutoscaler, ScalingDecision
    from repro.serving.cluster import ClusterSimulator
    from repro.serving.engine import BatchedRetrievalEngine
    from repro.workload.request import Request

# Event kinds the standard sources schedule.  Kinds are plain strings so
# user-defined sources extend the vocabulary without touching this module.
ARRIVAL = "arrival"
FLUSH = "flush"
FINISH = "finish"
AUTOSCALE_TICK = "autoscale_tick"
MAINTENANCE_TICK = "maintenance_tick"
CHECKPOINT_TICK = "checkpoint_tick"


@runtime_checkable
class EventSource(Protocol):
    """Anything that can plug into a serving run.

    ``attach(loop, cluster)`` is called once before the loop runs: register
    handlers with :meth:`EventLoop.on` and schedule initial events.  Attach
    order is the determinism contract for same-time events (insertion order
    breaks ties), so compositions should attach arrival sources first.
    """

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        ...


def _dispatch_to_source(event: Event) -> None:
    """Shared handler for source-owned kinds: payload is (source, data)."""
    source, data = event.payload
    source._on_event(data)


def _register_dispatch(loop: EventLoop, kind: str) -> None:
    """Idempotently register the per-source dispatcher for ``kind``.

    The standard sources schedule their events with a ``(source, data)``
    payload and share one dispatcher per kind, so several sources of the
    same class compose on one loop (two arrival traces, autoscalers on two
    tiers, ...) without fighting over the one-handler-per-kind rule.  A
    *foreign* handler already claiming the kind is an error — reusing it
    silently would route standard events to it (or vice versa) depending
    on attach order.
    """
    existing = loop.handler(kind)
    if existing is None:
        loop.on(kind, _dispatch_to_source)
    elif existing is not _dispatch_to_source:
        raise ValueError(
            f"event kind {kind!r} is already handled by {existing!r}, which "
            "is not the shared per-source dispatcher; custom sources must "
            "use their own event kinds"
        )


def _periodic(loop: EventLoop, source, kind: str, interval_s: float,
              horizon_s: float) -> int:
    """Schedule a bounded tick train for ``source``; returns the tick count.

    Ticks are primed up-front (not self-rescheduled) so the loop drains
    once real work is done and the event count stays bounded and
    deterministic regardless of what handlers do.  Tick times are computed
    on the ``i * interval_s`` grid — accumulating ``t += interval_s`` would
    drift under float rounding and silently drop the final tick for
    fractional intervals.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    if horizon_s < 0:
        raise ValueError(f"horizon_s must be >= 0, got {horizon_s}")
    ticks = int(horizon_s / interval_s + 1e-9)
    for i in range(1, ticks + 1):
        loop.schedule(i * interval_s, kind, (source, None))
    return ticks


class TraceArrivalSource:
    """Replays ``[(timestamp, request)]`` arrivals through the loop.

    Exactly one of ``router`` (a per-request callable ``(request, cluster)
    -> (model_name, examples)``) or ``sink`` (a :class:`BatchFlushSource`)
    consumes the arrivals.  Use :meth:`from_trace` to expand an
    :class:`~repro.workload.trace.ArrivalTrace` — including the open-loop
    ``poisson_trace``/``diurnal_trace`` processes — into arrivals.
    """

    def __init__(self, arrivals: Iterable[tuple[float, "Request"]],
                 router: Callable | None = None,
                 sink: "BatchFlushSource | None" = None) -> None:
        if (router is None) == (sink is None):
            raise ValueError("provide exactly one of router= or sink=")
        self.arrivals = list(arrivals)
        self.router = router
        self.sink = sink
        self.emitted = 0

    @classmethod
    def from_trace(cls, trace, requests: Iterable["Request"], *,
                   router: Callable | None = None,
                   sink: "BatchFlushSource | None" = None,
                   seed: int = 0) -> "TraceArrivalSource":
        """Expand ``trace`` into Poisson arrival times over ``requests``.

        The request list is truncated or the times are (whichever is
        shorter), so open-loop processes with a random arrival count pair
        safely with a finite request stream.
        """
        times = trace.arrival_times(seed=seed)
        requests = list(requests)
        n = min(len(times), len(requests))
        return cls(list(zip(times[:n], requests[:n])), router=router, sink=sink)

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        self._cluster = cluster
        _register_dispatch(loop, ARRIVAL)
        for timestamp, request in self.arrivals:
            loop.schedule(timestamp, ARRIVAL, (self, request))

    def _on_event(self, request: "Request") -> None:
        """One arrival fired: route-and-enqueue now, or park in the batcher.

        The per-request mode is the paper's inline serving path (Algorithm
        1 invoked at arrival time, section 6's closed-loop evaluation);
        the sink mode defers routing to the micro-batching engine, which
        is how the section-7 throughput experiments amortize retrieval.
        """
        self.emitted += 1
        if self.sink is not None:
            self.sink.add(request)
            return
        model_name, examples = self.router(request, self._cluster)
        queue = self._cluster.enqueue(model_name, request, examples,
                                      self._loop.now)
        if queue is not None:  # None = shed at admission (queue-depth cap)
            self._cluster.drain(queue)


class BatchFlushSource:
    """Micro-batching over the event clock.

    Wraps a :class:`~repro.serving.engine.RequestBatcher` built from the
    engine's :class:`~repro.serving.engine.BatchPolicy`: a batch dispatches
    inline the moment it reaches ``max_batch``, and the first item of every
    batch arms a ``flush`` event at the batcher's deadline.  The event
    carries the batcher's generation stamp, so a timer armed for a batch
    that already size-flushed falls through as a no-op.
    """

    def __init__(self, engine: "BatchedRetrievalEngine") -> None:
        self.engine = engine
        self.batcher = engine.make_batcher()

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        self._cluster = cluster
        _register_dispatch(loop, FLUSH)

    def add(self, request: "Request") -> None:
        """Park one arrival; dispatches or arms the timeout as needed."""
        now = self._loop.now
        opened = len(self.batcher) == 0
        full = self.batcher.add((request, now), now)
        if full is not None:
            self._dispatch(full)
        elif opened:
            self._loop.schedule(self.batcher.deadline, FLUSH,
                                (self, self.batcher.generation))

    def _on_event(self, generation: int) -> None:
        """A timeout flush fired for the batch stamped ``generation``."""
        if self.batcher.generation != generation:
            return  # stale timer: that batch already dispatched on size
        batch = self.batcher.flush()
        if batch:
            self._dispatch(batch)

    def _dispatch(self, batch: list[tuple["Request", float]]) -> None:
        """Route a micro-batch; each request enqueues at its arrival time."""
        requests = [request for request, _ in batch]
        decisions = self.engine.route_batch(requests, self._cluster)
        touched = []
        for (request, arrival_s), (model_name, examples) in zip(batch,
                                                                decisions):
            queue = self._cluster.enqueue(model_name, request, examples,
                                          arrival_s)
            if queue is not None:  # None = shed at admission
                touched.append(queue)
        for queue in touched:
            self._cluster.drain(queue)


class AutoscalerTickSource:
    """Live autoscaling: observe the bias signal, apply replica changes.

    Every ``interval_s`` up to ``horizon_s``, reads ``bias_fn()`` (typically
    ``service.router.current_bias`` — the paper's "persistent magnitude of
    this applied bias" signal) and the cluster's :meth:`total_load`, feeds
    them to the :class:`BiasAutoscaler`, and applies any non-zero
    :class:`ScalingDecision` to ``model_name``'s deployment through
    :meth:`ClusterSimulator.apply_scaling` — which clamps scale-ups to the
    GPU budget and scale-downs to one replica.  ``history`` records one
    :class:`ReplicaSample` per tick for assertions and plots.
    """

    def __init__(self, autoscaler: BiasAutoscaler, model_name: str,
                 bias_fn: Callable[[], float], *,
                 interval_s: float, horizon_s: float) -> None:
        self.autoscaler = autoscaler
        self.model_name = model_name
        self.bias_fn = bias_fn
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self.history: list[ReplicaSample] = []

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        self._cluster = cluster
        _register_dispatch(loop, AUTOSCALE_TICK)
        _periodic(loop, self, AUTOSCALE_TICK, self.interval_s, self.horizon_s)

    def _on_event(self, _: None) -> None:
        """One autoscaler tick: observe the section-4.2 bias, maybe scale.

        The paper: "the persistent magnitude of this applied bias can be
        used ... for infrastructure auto-scaling" — each tick reads that
        live signal plus cluster utilization, and applies the resulting
        decision immediately (clamped by :meth:`apply_scaling`), so the
        control loop acts back on the run that produced the signal.
        """
        bias = max(0.0, float(self.bias_fn()))
        utilization = self._cluster.total_load()
        decision = self.autoscaler.observe(bias, utilization)
        applied = 0
        if decision.replicas_delta != 0:
            applied = self._cluster.apply_scaling(self.model_name,
                                                  decision.replicas_delta)
        queue_depl = self._cluster.deployment(self.model_name)
        self.history.append(ReplicaSample(
            time_s=self._loop.now,
            decision=decision,
            applied_delta=applied,
            replicas=queue_depl.replicas,
            total_gpus=self._cluster.total_gpus(),
        ))


@dataclass(slots=True)
class ReplicaSample:
    """One autoscaler tick's outcome (for assertions and time-series plots)."""

    time_s: float
    decision: "ScalingDecision"
    applied_delta: int
    replicas: int
    total_gpus: int


class MaintenanceTickSource:
    """Online cache maintenance on a fixed cadence.

    Every ``interval_s`` up to ``horizon_s``: advance the service clock to
    simulated now (so gain decay sees true elapsed time) and run one
    ``ICCacheService.run_maintenance`` pass — capacity enforcement plus,
    when ``replay=True``, a section-4.3 replay sweep.  The pass emits the
    pipeline's ``on_maintenance`` middleware hook, preserving
    ``LearningHook`` ordering for observers of cache lifecycle events.
    """

    def __init__(self, service, *, interval_s: float, horizon_s: float,
                 replay: bool = True, expected_reuse: float = 20.0) -> None:
        self.service = service
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self.replay = replay
        self.expected_reuse = expected_reuse
        self.history: list[dict] = []

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        _register_dispatch(loop, MAINTENANCE_TICK)
        _periodic(loop, self, MAINTENANCE_TICK, self.interval_s,
                  self.horizon_s)

    def _on_event(self, _: None) -> None:
        """One maintenance tick: decay, evict, (optionally) replay.

        Advances the service clock first so the section-4.3 hourly gain
        decay sees true elapsed simulated time, then delegates to
        ``run_maintenance`` (which ends by emitting the pipeline's
        ``on_maintenance`` hook).
        """
        self.service.clock.advance_to(self._loop.now)
        outcome = self.service.run_maintenance(
            replay=self.replay, expected_reuse=self.expected_reuse
        )
        outcome["time_s"] = self._loop.now
        self.history.append(outcome)


class CheckpointTickSource:
    """Periodic durable-state checkpoints on a fixed cadence.

    Every ``interval_s`` up to ``horizon_s``: advance the service clock to
    simulated now (so the snapshot's notion of time matches the run) and
    take one :meth:`Checkpointer.checkpoint` — a fresh full snapshot plus a
    WAL truncation.  Like every tick source, the train is primed up-front
    and bounded, never self-rescheduling, so adding checkpointing to a
    scenario cannot keep its loop alive.

    A checkpoint bounds crash-recovery loss: state restored from the
    snapshot (plus any WAL tail journaled after it) is bit-identical to
    the service at the checkpoint boundary, and requests in flight at the
    crash are lost — the semantics ``docs/PERSISTENCE.md`` specifies.
    ``history`` records one summary dict per tick for assertions.
    """

    def __init__(self, checkpointer, *, interval_s: float,
                 horizon_s: float) -> None:
        self.checkpointer = checkpointer
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self.history: list[dict] = []

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        _register_dispatch(loop, CHECKPOINT_TICK)
        _periodic(loop, self, CHECKPOINT_TICK, self.interval_s,
                  self.horizon_s)

    def _on_event(self, _: None) -> None:
        service = self.checkpointer.service
        service.clock.advance_to(self._loop.now)
        path = self.checkpointer.checkpoint()
        self.history.append({
            "time_s": self._loop.now,
            "path": str(path),
            "examples": len(service.cache),
            "served": service.stats.served,
        })
