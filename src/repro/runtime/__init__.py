"""Event-driven serving runtime: one deterministic scheduler for everything.

The serving layer's online behaviours — trace replay, retrieval
micro-batching, bias-signal autoscaling, cache maintenance — are all event
processes over the same simulated clock.  This package provides the
deterministic discrete-event core (:class:`EventLoop`) and the pluggable
:class:`EventSource`\\ s that produce those events;
:class:`repro.serving.cluster.ClusterSimulator` composes them into runs.

Determinism rules (see ``docs/RUNTIME.md``):

* same-time events dispatch in scheduling order (monotonic sequence
  tie-break), so attach order is part of a scenario's definition;
* sources read live state (flags, replica counts, cache contents) at event
  time, never snapshots taken at construction;
* tick trains are primed up-front over a bounded horizon, so runs terminate
  and event counts are reproducible.
"""

from repro.runtime.chaos import (
    CRASH_RECOVERY,
    REPLICA_CHAOS,
    CrashRecoverySource,
    FaultScheduleSource,
    ReplicaKillSource,
    ServiceHolder,
    SlowShardSource,
)
from repro.runtime.loop import Event, EventLoop
from repro.runtime.sources import (
    ARRIVAL,
    AUTOSCALE_TICK,
    CHECKPOINT_TICK,
    FINISH,
    FLUSH,
    MAINTENANCE_TICK,
    AutoscalerTickSource,
    BatchFlushSource,
    CheckpointTickSource,
    EventSource,
    MaintenanceTickSource,
    ReplicaSample,
    TraceArrivalSource,
)

__all__ = [
    "Event",
    "EventLoop",
    "EventSource",
    "TraceArrivalSource",
    "BatchFlushSource",
    "AutoscalerTickSource",
    "MaintenanceTickSource",
    "CheckpointTickSource",
    "ReplicaSample",
    "ServiceHolder",
    "ReplicaKillSource",
    "SlowShardSource",
    "FaultScheduleSource",
    "CrashRecoverySource",
    "ARRIVAL",
    "FLUSH",
    "FINISH",
    "AUTOSCALE_TICK",
    "MAINTENANCE_TICK",
    "CHECKPOINT_TICK",
    "REPLICA_CHAOS",
    "CRASH_RECOVERY",
]
