"""Chaos event sources: faults as first-class citizens of the runtime.

The PR-4 runtime made every online behaviour an event process; this module
does the same for *failures*, so chaos scenarios compose with ordinary
sources on one deterministic loop instead of living in ad-hoc test
harnesses:

* :class:`ReplicaKillSource` — kills (and optionally restores) replicas
  mid-run through :meth:`ClusterSimulator.apply_scaling`, so capacity loss
  shows up in the scaling timeline like any other replica change;
* :class:`SlowShardSource` — injects extra TTFT on a model during scheduled
  windows via the cluster's ``latency_penalty`` hook (a degraded shard, a
  noisy neighbour, a failing NIC);
* :class:`FaultScheduleSource` — drives a
  :class:`~repro.pipeline.middleware.FaultInjectionMiddleware` from the
  event clock, raising retrieval/routing faults only inside scheduled
  windows (the ``FaultBypassMiddleware`` then absorbs them into fallback
  routing, exactly as in steady-state fault handling);
* :class:`CrashRecoverySource` — the headline: at a scheduled instant the
  live service *dies* and is rebuilt from its durable state
  (:meth:`Checkpointer.recover`), in-flight requests are lost, and serving
  resumes on the recovered instance — all inside one event-loop run.

Because a crash replaces the service object mid-run, routing callbacks must
not capture the service at attach time.  :class:`ServiceHolder` is the
indirection: sources and simulators hold the *holder*, whose ``route`` /
``on_complete`` delegate to whichever service generation is currently
adopted.

Determinism: every source here schedules plain events on the shared loop
and mutates state only inside handlers, so a chaos scenario is as
replayable as a benign one — ``tests/test_chaos.py`` pins that a kill +
WAL recovery inside a flash crowd finishes bit-identically across two
same-seed runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.runtime.loop import EventLoop
from repro.runtime.sources import _register_dispatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import ICCacheConfig
    from repro.core.service import ICCacheService
    from repro.persistence.wal import Checkpointer
    from repro.serving.cluster import ClusterSimulator
    from repro.serving.records import ServedRequest
    from repro.workload.request import Request

# Chaos event kinds (plain strings, extending the standard vocabulary).
REPLICA_CHAOS = "replica_chaos"
CRASH_RECOVERY = "crash_recovery"

Window = tuple[float, float]


def _in_windows(now: float, windows: Sequence[Window]) -> bool:
    return any(start <= now < end for start, end in windows)


class ServiceHolder:
    """Mutable indirection over the live service instance.

    A crash-recovery event replaces the service object mid-run; anything
    that captured ``service.cluster_router()`` directly would keep routing
    against the dead instance.  The holder re-derives the router on every
    :meth:`adopt` and delegates ``route``/``on_complete`` to the current
    generation, so arrival sources and the simulator's completion callback
    survive the swap untouched.  ``on_adopt`` hooks re-apply per-service
    setup (e.g. re-installing injected middleware) after each swap.
    """

    def __init__(self, service: "ICCacheService") -> None:
        self.generation = -1
        self._adopt_hooks: list[Callable[["ICCacheService"], None]] = []
        self.adopt(service)

    def adopt(self, service: "ICCacheService") -> None:
        """Make ``service`` the live generation (rebuilding the router)."""
        self.service = service
        self._route = service.cluster_router()
        self.generation += 1
        for hook in self._adopt_hooks:
            hook(service)

    def on_adopt(self, hook: Callable[["ICCacheService"], None]) -> None:
        """Register per-service setup; runs now and after every adopt."""
        self._adopt_hooks.append(hook)
        hook(self.service)

    # RouterFn surface (drop-in for ``service.cluster_router()``).
    def route(self, request: "Request", cluster: "ClusterSimulator"):
        return self._route(request, cluster)

    def on_complete(self, request: "Request",
                    record: "ServedRequest") -> None:
        """Completion callback delegating to the live generation.

        A request routed by generation N but finishing after a crash swap
        reaches generation N+1's pipeline, which does not know its
        request_id and ignores it — the in-flight-lost-on-crash semantics
        ``docs/PERSISTENCE.md`` specifies.
        """
        self.service.on_complete(request, record)


class ReplicaKillSource:
    """Kill replicas at scheduled instants; optionally restore them later.

    Each ``(at_s, n)`` in ``kills`` removes ``n`` replicas of
    ``model_name`` at ``at_s`` through :meth:`ClusterSimulator.apply_scaling`
    — so the one-replica floor clamps the kill exactly like an autoscaler
    scale-down would be clamped, in-flight requests keep their slots, and
    the capacity loss lands in ``report.scaling`` for the SLO timeline.
    With ``restore_after_s`` set, each kill's *applied* count is added back
    that many seconds later (budget-clamped, drains queued work on arrival
    — a node replacement coming up).
    """

    def __init__(self, model_name: str, kills: Sequence[tuple[float, int]],
                 restore_after_s: float | None = None) -> None:
        if restore_after_s is not None and restore_after_s <= 0:
            raise ValueError(
                f"restore_after_s must be positive, got {restore_after_s}"
            )
        for at_s, n in kills:
            if at_s < 0 or n < 1:
                raise ValueError(f"bad kill ({at_s}, {n}): need at_s >= 0, n >= 1")
        self.model_name = model_name
        self.kills = [(float(at_s), int(n)) for at_s, n in kills]
        self.restore_after_s = restore_after_s
        self.history: list[dict] = []

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        self._cluster = cluster
        _register_dispatch(loop, REPLICA_CHAOS)
        for at_s, n in self.kills:
            loop.schedule(at_s, REPLICA_CHAOS, (self, ("kill", n)))

    def _on_event(self, data: tuple[str, int]) -> None:
        action, n = data
        delta = -n if action == "kill" else n
        applied = self._cluster.apply_scaling(self.model_name, delta)
        self.history.append({
            "time_s": self._loop.now,
            "action": action,
            "requested_delta": delta,
            "applied_delta": applied,
            "replicas": self._cluster.deployment(self.model_name).replicas,
        })
        if action == "kill" and applied != 0 and self.restore_after_s is not None:
            self._loop.schedule(self._loop.now + self.restore_after_s,
                                REPLICA_CHAOS, (self, ("restore", -applied)))


class SlowShardSource:
    """Latency injection: a model's replicas run slow during windows.

    Installs the cluster's ``latency_penalty`` hook so every request
    *started* on an affected model inside a ``(start_s, end_s)`` window
    pays ``penalty_s`` extra seconds of TTFT (and hence end-to-end
    latency).  ``model_names=None`` affects every model.  Purely
    functional in event time — same run, same penalties — and refuses to
    stack on an already-installed hook rather than silently compose.
    """

    def __init__(self, windows: Sequence[Window], penalty_s: float,
                 model_names: Sequence[str] | None = None) -> None:
        if penalty_s < 0:
            raise ValueError(f"penalty_s must be >= 0, got {penalty_s}")
        for start, end in windows:
            if not 0 <= start < end:
                raise ValueError(f"bad window ({start}, {end})")
        self.windows = [(float(a), float(b)) for a, b in windows]
        self.penalty_s = penalty_s
        self.model_names = set(model_names) if model_names is not None else None
        self.injected = 0

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        if cluster.latency_penalty is not None:
            raise ValueError(
                "cluster.latency_penalty is already installed; compose slow "
                "shards inside one SlowShardSource"
            )
        cluster.latency_penalty = self._penalty

    def _penalty(self, model_name: str, request: "Request",
                 now: float) -> float:
        if self.model_names is not None and model_name not in self.model_names:
            return 0.0
        if _in_windows(now, self.windows):
            self.injected += 1
            return self.penalty_s
        return 0.0


class FaultScheduleSource:
    """Scheduled pipeline faults over ``FaultInjectionMiddleware``.

    Builds one :class:`~repro.pipeline.middleware.FaultInjectionMiddleware`
    whose predicates consult the *event clock*: retrieval faults fire for
    requests routed inside ``retrieval_windows``, routing faults inside
    ``route_windows``.  The middleware is inserted at the head of the
    pipeline, upstream of ``FaultBypassMiddleware``, so scheduled faults
    degrade to fallback routing (counted in ``service.stats.bypasses``)
    instead of crashing the run.

    ``target`` is either a service or a :class:`ServiceHolder`; with a
    holder, the middleware is re-installed on every adopted generation, so
    the fault schedule survives crash recovery.
    """

    def __init__(self, target, retrieval_windows: Sequence[Window] = (),
                 route_windows: Sequence[Window] = ()) -> None:
        from repro.pipeline.middleware import FaultInjectionMiddleware

        for start, end in (*retrieval_windows, *route_windows):
            if not 0 <= start < end:
                raise ValueError(f"bad window ({start}, {end})")
        self.retrieval_windows = [(float(a), float(b))
                                  for a, b in retrieval_windows]
        self.route_windows = [(float(a), float(b)) for a, b in route_windows]
        self._loop: EventLoop | None = None
        self.middleware = FaultInjectionMiddleware(
            fail_retrieval=lambda contexts: self._scheduled(
                self.retrieval_windows),
            fail_route=lambda ctx: self._scheduled(self.route_windows),
        )
        if isinstance(target, ServiceHolder):
            target.on_adopt(self._install)
        else:
            self._install(target)

    def _install(self, service: "ICCacheService") -> None:
        service.pipeline.middlewares.insert(0, self.middleware)

    def _scheduled(self, windows: Sequence[Window]) -> bool:
        # Before attach (inline serving outside a run) nothing fires.
        return self._loop is not None and _in_windows(self._loop.now, windows)

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop


class CrashRecoverySource:
    """Kill the live service at ``at_s`` and recover it from durable state.

    The scheduled event replays the full crash-recovery protocol inside
    the run: detach the dying service's journal, rebuild a fresh service
    from the snapshot + WAL tail (:meth:`Checkpointer.recover`), wrap it
    in a new :class:`Checkpointer` over the same directory, optionally
    fold the replayed tail into a fresh snapshot (``recheckpoint=True``,
    the documented resume step), and :meth:`ServiceHolder.adopt` the
    recovered instance so subsequent arrivals route against it.  Requests
    in flight at the crash finish against the *new* generation's pipeline,
    which ignores their unknown request_ids — in-flight work is lost, as
    a real crash loses it.

    ``self.checkpointer`` always points at the live Checkpointer (the
    replacement after recovery), so later sources or assertions can keep
    checkpointing the recovered service.
    """

    def __init__(self, holder: ServiceHolder, checkpointer: "Checkpointer",
                 at_s: float, config: "ICCacheConfig | None" = None,
                 recheckpoint: bool = True) -> None:
        if at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {at_s}")
        self.holder = holder
        self.checkpointer = checkpointer
        self.at_s = float(at_s)
        self.config = config
        self.recheckpoint = recheckpoint
        self.history: list[dict] = []

    def attach(self, loop: EventLoop, cluster: "ClusterSimulator") -> None:
        self._loop = loop
        self._cluster = cluster
        _register_dispatch(loop, CRASH_RECOVERY)
        loop.schedule(self.at_s, CRASH_RECOVERY, (self, None))

    def _on_event(self, _: None) -> None:
        from repro.persistence.wal import Checkpointer

        old = self.checkpointer
        wal_tail = len(old.wal)
        directory = old.directory
        old.detach()
        config = self.config if self.config is not None else self.holder.service.config
        recovered = Checkpointer.recover(directory, config=config)
        replacement = Checkpointer(recovered, directory,
                                   compact_after_bytes=old.compact_after_bytes)
        if self.recheckpoint:
            recovered.clock.advance_to(self._loop.now)
            replacement.checkpoint()
        self.checkpointer = replacement
        self.holder.adopt(recovered)
        self.history.append({
            "time_s": self._loop.now,
            "wal_tail_replayed": wal_tail,
            "examples": len(recovered.cache),
            "generation": self.holder.generation,
        })
