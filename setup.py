from setuptools import find_packages, setup

setup(
    name="ic-cache-repro",
    version="0.2.0",
    description=(
        "Reproduction of IC-Cache (conf_sosp_YuGSTSZK0LC25): efficient LLM "
        "serving via in-context caching — example selection, learned "
        "routing, cache management, and a batched sharded retrieval engine "
        "over a discrete-event serving simulator."
    ),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
